// Unit tests for the SGL learner (paper Algorithm 1 mechanics).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/sgl.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "measure/measurements.hpp"
#include "spectral/embedding.hpp"

namespace sgl::core {
namespace {

measure::Measurements grid_measurements(Index nx, Index ny, Index m,
                                        std::uint64_t seed = 2021) {
  const graph::Graph g = graph::make_grid2d(nx, ny).graph;
  measure::MeasurementOptions options;
  options.num_measurements = m;
  options.seed = seed;
  return measure::generate_measurements(g, options);
}

TEST(SglLearner, InitialGraphIsSpanningTreeOfKnn) {
  const measure::Measurements m = grid_measurements(10, 10, 30);
  SglConfig config;
  SglLearner learner(m.voltages, config);
  EXPECT_EQ(learner.current_graph().num_edges(),
            learner.current_graph().num_nodes() - 1);
  EXPECT_TRUE(graph::is_connected(learner.current_graph()));
  EXPECT_TRUE(graph::is_connected(learner.knn_graph()));
  EXPECT_EQ(learner.iteration(), 0);
  EXPECT_FALSE(learner.converged());
}

TEST(SglLearner, StepAddsAtMostCeilNBetaEdges) {
  const measure::Measurements m = grid_measurements(12, 12, 30);
  SglConfig config;
  config.beta = 0.02;  // ⌈144·0.02⌉ = 3
  SglLearner learner(m.voltages, config);
  const Index before = learner.current_graph().num_edges();
  const SglIterationStats stats = learner.step();
  EXPECT_LE(stats.edges_added, 3);
  EXPECT_EQ(learner.current_graph().num_edges(), before + stats.edges_added);
  EXPECT_EQ(stats.iteration, 1);
  EXPECT_EQ(stats.total_edges, learner.current_graph().num_edges());
}

TEST(SglLearner, HistoryAccumulates) {
  const measure::Measurements m = grid_measurements(8, 8, 25);
  SglConfig config;
  config.max_iterations = 5;
  SglLearner learner(m.voltages, config);
  for (int i = 0; i < 3 && !learner.converged(); ++i) learner.step();
  EXPECT_LE(learner.history().size(), 3u);
  if (learner.history().size() >= 2) {
    EXPECT_EQ(learner.history()[0].iteration, 1);
    EXPECT_EQ(learner.history()[1].iteration, 2);
  }
}

TEST(SglLearner, StepAfterConvergenceIsNoop) {
  const measure::Measurements m = grid_measurements(6, 6, 20);
  SglConfig config;
  SglLearner learner(m.voltages, config);
  while (!learner.converged()) learner.step();
  const Index edges = learner.current_graph().num_edges();
  const SglIterationStats stats = learner.step();
  EXPECT_EQ(stats.edges_added, 0);
  EXPECT_EQ(learner.current_graph().num_edges(), edges);
}

TEST(SglLearner, ObserverSeesEveryIteration) {
  const measure::Measurements m = grid_measurements(8, 8, 25);
  SglConfig config;
  config.max_iterations = 50;
  std::vector<Index> seen;
  config.observer = [&seen](Index iteration, Real, Index) {
    seen.push_back(iteration);
  };
  SglLearner learner(m.voltages, config);
  const SglResult result = learner.run(nullptr);
  EXPECT_EQ(to_index(seen.size()), result.iterations);
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], to_index(i) + 1);
}

TEST(SglLearner, RunRespectsMaxIterations) {
  const measure::Measurements m = grid_measurements(12, 12, 30);
  SglConfig config;
  config.max_iterations = 2;
  config.tolerance = 0.0;  // never converge by tolerance
  SglLearner learner(m.voltages, config);
  const SglResult result = learner.run(nullptr);
  EXPECT_LE(result.iterations, 2);
}

TEST(SglLearner, LearnedGraphStaysConnectedAndSparse) {
  const measure::Measurements m = grid_measurements(12, 12, 40);
  const SglResult result = learn_graph(m.voltages, m.currents);
  EXPECT_TRUE(graph::is_connected(result.learned));
  EXPECT_TRUE(result.converged);
  // Ultra-sparse: density close to a tree's (n−1)/n ≈ 1, far below kNN's.
  EXPECT_LT(result.learned.density(), 1.3);
  EXPECT_GE(result.learned.num_edges(), result.learned.num_nodes() - 1);
}

TEST(SglLearner, AddedEdgesComeFromCandidatePool) {
  const measure::Measurements m = grid_measurements(10, 10, 30);
  SglConfig config;
  SglLearner learner(m.voltages, config);
  const SglResult result = learner.run(nullptr);
  // Every learned edge must exist in the kNN graph (same endpoints).
  std::set<std::pair<Index, Index>> candidate_pairs;
  for (const graph::Edge& e : result.knn_graph.edges())
    candidate_pairs.emplace(e.s, e.t);
  for (const graph::Edge& e : result.learned.edges())
    EXPECT_TRUE(candidate_pairs.count({e.s, e.t})) << e.s << "," << e.t;
}

TEST(SglLearner, EdgeWeightsFollowDataDistances) {
  const measure::Measurements m = grid_measurements(9, 9, 30);
  SglConfig config;
  config.edge_scaling = false;  // inspect raw M/z_data weights
  SglLearner learner(m.voltages, config);
  const SglResult result = learner.run(nullptr);
  const Real cols = static_cast<Real>(m.voltages.cols());
  for (const graph::Edge& e : result.learned.edges()) {
    const Real z = m.voltages.row_distance_squared(e.s, e.t);
    EXPECT_NEAR(e.weight, cols / z, cols / z * 1e-9);
  }
}

TEST(SglLearner, VoltageOnlyRunSkipsScaling) {
  const measure::Measurements m = grid_measurements(8, 8, 25);
  const SglResult result = learn_graph(m.voltages);
  EXPECT_DOUBLE_EQ(result.scale_factor, 1.0);
}

TEST(SglLearner, ScalingChangesOnlyScale) {
  const measure::Measurements m = grid_measurements(8, 8, 25);
  SglConfig config;
  const SglResult with_y = learn_graph(m.voltages, m.currents, config);
  config.edge_scaling = false;
  const SglResult without = learn_graph(m.voltages, m.currents, config);
  ASSERT_EQ(with_y.learned.num_edges(), without.learned.num_edges());
  for (Index e = 0; e < with_y.learned.num_edges(); ++e) {
    EXPECT_NEAR(with_y.learned.edge(e).weight,
                without.learned.edge(e).weight * with_y.scale_factor,
                1e-9 * with_y.learned.edge(e).weight);
  }
}

TEST(SglLearner, DeterministicAcrossRuns) {
  const measure::Measurements m = grid_measurements(9, 9, 25);
  const SglResult a = learn_graph(m.voltages, m.currents);
  const SglResult b = learn_graph(m.voltages, m.currents);
  ASSERT_EQ(a.learned.num_edges(), b.learned.num_edges());
  for (Index e = 0; e < a.learned.num_edges(); ++e) {
    EXPECT_EQ(a.learned.edge(e).s, b.learned.edge(e).s);
    EXPECT_EQ(a.learned.edge(e).t, b.learned.edge(e).t);
    EXPECT_DOUBLE_EQ(a.learned.edge(e).weight, b.learned.edge(e).weight);
  }
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(SglLearner, StepwiseMatchesOneShot) {
  const measure::Measurements m = grid_measurements(9, 9, 25);
  SglConfig config;
  SglLearner stepwise(m.voltages, config);
  while (!stepwise.converged() && !stepwise.exhausted() &&
         stepwise.iteration() < config.max_iterations) {
    stepwise.step();
  }
  const SglResult a = stepwise.finalize(&m.currents);
  const SglResult b = learn_graph(m.voltages, m.currents, config);
  EXPECT_EQ(a.learned.num_edges(), b.learned.num_edges());
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(SglLearner, SmaxTrendsDownward) {
  const measure::Measurements m = grid_measurements(12, 12, 40);
  SglConfig config;
  const SglResult result = learn_graph(m.voltages, m.currents, config);
  ASSERT_GE(result.history.size(), 3u);
  // Overall decreasing trend: last recorded smax well below the first.
  EXPECT_LT(result.history.back().smax, result.history.front().smax);
}

TEST(SglLearner, ConvergenceCertificateHolds) {
  // After convergence, every remaining candidate edge's sensitivity
  // (recomputed from a fresh embedding of the final graph) is below
  // tolerance — the paper's §II-C optimality certificate.
  const measure::Measurements m = grid_measurements(10, 10, 30);
  SglConfig config;
  SglLearner learner(m.voltages, config);
  const SglResult result = learner.run(nullptr);  // unscaled weights
  ASSERT_TRUE(result.converged);

  spectral::EmbeddingOptions eopt;
  eopt.r = config.embedding.r;
  eopt.sigma2 = config.embedding.sigma2;
  const spectral::Embedding emb =
      spectral::compute_embedding(result.learned, eopt);

  std::set<std::pair<Index, Index>> learned_pairs;
  for (const graph::Edge& e : result.learned.edges())
    learned_pairs.emplace(e.s, e.t);
  const Real cols = static_cast<Real>(m.voltages.cols());
  for (const graph::Edge& e : result.knn_graph.edges()) {
    if (learned_pairs.count({e.s, e.t})) continue;  // not a candidate anymore
    const Real z_emb = emb.u.row_distance_squared(e.s, e.t);
    const Real z_data = m.voltages.row_distance_squared(e.s, e.t);
    // Tolerance padded for the eigensolver's own tolerance.
    EXPECT_LE(z_emb - z_data / cols, config.tolerance + 1e-8);
  }
}

TEST(SglLearner, InvariantToMeasurementColumnPermutation) {
  // Reordering the measurement pairs (columns of X and Y together) must
  // not change the learned graph.
  const measure::Measurements m = grid_measurements(8, 8, 12);
  la::DenseMatrix x_perm(m.voltages.rows(), m.voltages.cols());
  la::DenseMatrix y_perm(m.currents.rows(), m.currents.cols());
  const std::vector<Index> perm{5, 2, 9, 0, 11, 7, 1, 10, 3, 8, 6, 4};
  for (Index j = 0; j < 12; ++j) {
    x_perm.set_col(j, m.voltages.col_vector(perm[static_cast<std::size_t>(j)]));
    y_perm.set_col(j, m.currents.col_vector(perm[static_cast<std::size_t>(j)]));
  }
  const SglResult a = learn_graph(m.voltages, m.currents);
  const SglResult b = learn_graph(x_perm, y_perm);
  ASSERT_EQ(a.learned.num_edges(), b.learned.num_edges());
  for (Index e = 0; e < a.learned.num_edges(); ++e) {
    EXPECT_EQ(a.learned.edge(e).s, b.learned.edge(e).s);
    EXPECT_EQ(a.learned.edge(e).t, b.learned.edge(e).t);
    EXPECT_NEAR(a.learned.edge(e).weight, b.learned.edge(e).weight,
                1e-6 * a.learned.edge(e).weight);
  }
}

TEST(SglLearner, ConvergedRunIsNotExhausted) {
  // A normal run on mesh measurements reaches the smax < tol certificate
  // with candidates left in the pool.
  const measure::Measurements m = grid_measurements(10, 10, 30);
  const SglResult result = learn_graph(m.voltages, m.currents);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.exhausted);
  EXPECT_LT(result.final_smax, SglConfig{}.tolerance);
}

TEST(SglLearner, ExhaustionIsNotReportedAsConvergence) {
  // Points on a circle make the kNN graph a ring: the spanning tree drops
  // exactly one edge, and that candidate closes a long resistive path, so
  // its sensitivity is strongly positive. With β = 1 it is added in the
  // first step, draining the pool while smax ≥ tolerance — the run must
  // report exhausted, NOT converged (no distortion certificate holds).
  const Index n = 12;
  la::DenseMatrix x(n, 2);
  for (Index i = 0; i < n; ++i) {
    const Real angle = 2.0 * 3.14159265358979 * static_cast<Real>(i) /
                       static_cast<Real>(n);
    x(i, 0) = std::cos(angle);
    x(i, 1) = std::sin(angle);
  }
  SglConfig config;
  config.k = 2;
  config.embedding.r = 3;
  config.tolerance = 0.0;
  config.beta = 1.0;
  SglLearner learner(x, config);
  ASSERT_EQ(learner.knn_graph().num_edges(),
            learner.current_graph().num_edges() + 1);
  const SglResult result = learner.run(nullptr);
  EXPECT_TRUE(result.exhausted);
  EXPECT_FALSE(result.converged);
  EXPECT_GT(result.final_smax, 0.0);
  EXPECT_TRUE(learner.exhausted());
  EXPECT_FALSE(learner.converged());
  // The ring was completed: all candidate edges are in the learned graph.
  EXPECT_EQ(result.learned.num_edges(), n);
}

TEST(SglLearner, StepAfterExhaustionIsNoopAndStaysUnconverged) {
  // Drive a learner until its pool drains (or it converges at the
  // boundary), then confirm step() is a no-op that does not flip states.
  const measure::Measurements m = grid_measurements(5, 5, 15);
  SglConfig config;
  config.tolerance = 0.0;
  config.beta = 1.0;
  SglLearner learner(m.voltages, config);
  for (Index i = 0; i < 200 && !learner.exhausted() && !learner.converged();
       ++i)
    learner.step();
  ASSERT_TRUE(learner.exhausted() || learner.converged());
  const bool was_converged = learner.converged();
  const Index edges = learner.current_graph().num_edges();
  const SglIterationStats stats = learner.step();
  EXPECT_EQ(stats.edges_added, 0);
  EXPECT_EQ(learner.current_graph().num_edges(), edges);
  EXPECT_EQ(learner.converged(), was_converged);
}

TEST(SglLearner, ThreadedRunMatchesSerialBitForBit) {
  // The sensitivity scan fills a preallocated array and reduces the max
  // in fixed chunk order, so the whole learned graph must be bit-identical
  // for every thread count.
  const measure::Measurements m = grid_measurements(9, 9, 25);
  SglConfig serial_config;
  serial_config.num_threads = 1;
  const SglResult serial = learn_graph(m.voltages, m.currents, serial_config);
  for (const Index threads : {2, 4}) {
    SglConfig config;
    config.num_threads = threads;
    const SglResult parallel = learn_graph(m.voltages, m.currents, config);
    ASSERT_EQ(parallel.learned.num_edges(), serial.learned.num_edges());
    for (Index e = 0; e < serial.learned.num_edges(); ++e) {
      EXPECT_EQ(parallel.learned.edge(e).s, serial.learned.edge(e).s);
      EXPECT_EQ(parallel.learned.edge(e).t, serial.learned.edge(e).t);
      EXPECT_EQ(parallel.learned.edge(e).weight, serial.learned.edge(e).weight);
    }
    EXPECT_EQ(parallel.iterations, serial.iterations);
    EXPECT_EQ(parallel.final_smax, serial.final_smax);
    EXPECT_EQ(parallel.scale_factor, serial.scale_factor);
    ASSERT_EQ(parallel.history.size(), serial.history.size());
    for (std::size_t i = 0; i < serial.history.size(); ++i)
      EXPECT_EQ(parallel.history[i].smax, serial.history[i].smax);
  }
}

TEST(SglLearner, StepReportsEigensolverConvergence) {
  const measure::Measurements m = grid_measurements(9, 9, 30);
  SglConfig config;
  SglLearner learner(m.voltages, config);
  const SglIterationStats healthy = learner.step();
  EXPECT_TRUE(healthy.eig_converged);

  // A basis capped at r−1 vectors starves the block eigensolver; the
  // iteration must still make progress but flag the unconverged embedding.
  SglConfig starved_config;
  starved_config.embedding.lanczos.max_subspace =
      starved_config.embedding.r - 1;
  SglLearner starved(m.voltages, starved_config);
  const SglIterationStats stats = starved.step();
  EXPECT_FALSE(stats.eig_converged);
  EXPECT_EQ(stats.iteration, 1);
}

TEST(SglLearner, Contracts) {
  la::DenseMatrix x(2, 3);  // too few nodes
  SglConfig config;
  EXPECT_THROW(SglLearner(x, config), ContractViolation);

  la::DenseMatrix ok(10, 3);
  config.k = 10;
  EXPECT_THROW(SglLearner(ok, config), ContractViolation);
  config.k = 3;
  config.embedding.r = 1;
  EXPECT_THROW(SglLearner(ok, config), ContractViolation);
  config.embedding.r = 5;
  config.beta = 0.0;
  EXPECT_THROW(SglLearner(ok, config), ContractViolation);
  config.beta = 1e-3;
  config.tolerance = -1.0;
  EXPECT_THROW(SglLearner(ok, config), ContractViolation);
}

TEST(SglLearner, MismatchedXYShapesThrow) {
  const measure::Measurements m = grid_measurements(6, 6, 10);
  la::DenseMatrix y_bad(36, 9);
  EXPECT_THROW(learn_graph(m.voltages, y_bad), ContractViolation);
}

void expect_same_graph_bitwise(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].s, b.edges()[i].s) << "edge " << i;
    EXPECT_EQ(a.edges()[i].t, b.edges()[i].t) << "edge " << i;
    EXPECT_EQ(a.edges()[i].weight, b.edges()[i].weight) << "edge " << i;
  }
}

TEST(SglLearner, IncrementalRunBitIdenticalAcrossThreadCounts) {
  // The per-mode determinism contract (DESIGN.md §8): an incremental run
  // must reproduce itself bitwise for every thread count — the update
  // path is serial and every bulk kernel is thread-count invariant.
  const measure::Measurements m = grid_measurements(10, 10, 30);
  SglConfig config;
  config.incremental = solver::IncrementalMode::kAuto;
  config.embedding.engine = spectral::EmbeddingEngine::kExact;
  config.num_threads = 1;
  const SglResult ref = learn_graph(m.voltages, m.currents, config);
  for (const Index threads : {2, 4, 8}) {
    config.num_threads = threads;
    const SglResult r = learn_graph(m.voltages, m.currents, config);
    expect_same_graph_bitwise(ref.learned, r.learned);
    EXPECT_EQ(ref.scale_factor, r.scale_factor) << "threads=" << threads;
  }
}

TEST(SglLearner, IncrementalOffIsDeterministicAndDefault) {
  // kOff is the default mode and promises the historical float stream:
  // two runs with an explicit kOff and a default config must agree
  // bitwise.
  const measure::Measurements m = grid_measurements(9, 9, 25);
  SglConfig config;
  config.embedding.engine = spectral::EmbeddingEngine::kExact;
  const SglResult a = learn_graph(m.voltages, m.currents, config);
  config.incremental = solver::IncrementalMode::kOff;
  const SglResult b = learn_graph(m.voltages, m.currents, config);
  expect_same_graph_bitwise(a.learned, b.learned);
  EXPECT_EQ(a.scale_factor, b.scale_factor);
}

TEST(SglLearner, IncrementalModesLearnEquivalentGraphs) {
  // Incremental runs may deviate from kOff in floating point (warm
  // refinement and updated factors), but the learned structure must stay
  // equivalent: same convergence, near-identical edge sets.
  const measure::Measurements m = grid_measurements(12, 12, 30);
  SglConfig config;
  config.embedding.engine = spectral::EmbeddingEngine::kExact;
  const SglResult off = learn_graph(m.voltages, m.currents, config);
  config.incremental = solver::IncrementalMode::kAuto;
  const SglResult on = learn_graph(m.voltages, m.currents, config);
  EXPECT_EQ(off.converged, on.converged);
  EXPECT_NEAR(static_cast<double>(on.learned.num_edges()),
              static_cast<double>(off.learned.num_edges()),
              0.01 * static_cast<double>(off.learned.num_edges()) + 2.0);
}

TEST(SglLearner, SolverContextCountersTrackTheRun) {
  const measure::Measurements m = grid_measurements(10, 10, 30);
  SglConfig config;
  config.embedding.engine = spectral::EmbeddingEngine::kExact;
  config.max_iterations = 4;
  {
    SglLearner learner(m.voltages, config);
    for (int i = 0; i < 4 && !learner.converged(); ++i) learner.step();
    const solver::SolverContextStats& cs = learner.solver_context().stats();
    // kOff: every consumer rebuilds — embedding + objective per step.
    EXPECT_GT(cs.acquisitions, 0);
    EXPECT_EQ(cs.rebuilds, cs.acquisitions);
    EXPECT_EQ(cs.updates_applied, 0);
  }
  config.incremental = solver::IncrementalMode::kAuto;
  {
    SglLearner learner(m.voltages, config);
    for (int i = 0; i < 4 && !learner.converged(); ++i) learner.step();
    const solver::SolverContextStats& cs = learner.solver_context().stats();
    EXPECT_GT(cs.acquisitions, 0);
    EXPECT_LE(cs.rebuilds, cs.acquisitions);
    // On mesh workloads the appended kNN edges fall outside the near-tree
    // factor pattern, so steps rebuild — but through the cached ordering.
    EXPECT_GT(cs.ordering_reuses + cs.updates_applied, 0);
  }
}

}  // namespace
}  // namespace sgl::core
