// Unit tests for spectral edge scaling (paper eqs. 21–23).
#include <gtest/gtest.h>

#include "core/scaling.hpp"
#include "graph/generators.hpp"
#include "measure/measurements.hpp"

namespace sgl::core {
namespace {

TEST(Scaling, TruthGraphScaleIsNearOne) {
  // Measurements generated on the same graph: eq. 23 must return ≈ 1.
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  const measure::Measurements m = measure::generate_measurements(g);
  const Real factor = spectral_edge_scale_factor(g, m.voltages, m.currents);
  EXPECT_NEAR(factor, 1.0, 1e-9);
}

TEST(Scaling, ThreadedFactorMatchesSerialBitForBit) {
  // The M solves are independent and the energy-ratio sum is reduced in
  // fixed chunk order, so the factor must be bit-identical for every
  // thread count.
  const graph::Graph g = graph::make_grid2d(9, 7).graph;
  measure::MeasurementOptions options;
  options.num_measurements = 40;
  const measure::Measurements m = measure::generate_measurements(g, options);
  const Real serial = spectral_edge_scale_factor(g, m.voltages, m.currents,
                                                 {}, /*num_threads=*/1);
  for (const Index threads : {2, 4, 8}) {
    EXPECT_EQ(spectral_edge_scale_factor(g, m.voltages, m.currents, {},
                                         threads),
              serial)
        << "threads=" << threads;
  }
}

class ScalingRecoverySweep : public ::testing::TestWithParam<Real> {};

TEST_P(ScalingRecoverySweep, RecoversUniformMisscaling) {
  // If the graph's weights are c× the generating weights, voltages on it
  // are (1/c)× the measured ones, and eq. 23 returns exactly 1/c — so
  // applying the scaling restores the generating weights.
  const Real c = GetParam();
  const graph::Graph truth = graph::make_grid2d(7, 9).graph;
  const measure::Measurements m = measure::generate_measurements(truth);

  graph::Graph misscaled = truth;
  misscaled.scale_weights(c);
  const Real factor =
      spectral_edge_scale_factor(misscaled, m.voltages, m.currents);
  EXPECT_NEAR(factor, 1.0 / c, 1e-8 / c);

  graph::Graph repaired = misscaled;
  const Real applied =
      apply_spectral_edge_scaling(repaired, m.voltages, m.currents);
  EXPECT_NEAR(applied, factor, 1e-12);
  for (Index e = 0; e < truth.num_edges(); ++e)
    EXPECT_NEAR(repaired.edge(e).weight, truth.edge(e).weight, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Factors, ScalingRecoverySweep,
                         ::testing::Values(0.01, 0.5, 2.0, 100.0));

TEST(Scaling, AfterScalingEnergyRatioIsOne) {
  // The defining property: mean ‖x̃‖²/‖x‖² = 1 after scaling, for any
  // learned topology (here: a different graph than the ground truth).
  const graph::Graph truth = graph::make_grid2d(6, 6).graph;
  const measure::Measurements m = measure::generate_measurements(truth);

  graph::Graph other = graph::make_grid2d(6, 6, /*periodic=*/false, 3.7).graph;
  other.add_edge(0, 35, 5.0);
  apply_spectral_edge_scaling(other, m.voltages, m.currents);
  const Real residual_factor =
      spectral_edge_scale_factor(other, m.voltages, m.currents);
  EXPECT_NEAR(residual_factor, 1.0, 1e-9);
}

TEST(Scaling, Contracts) {
  const graph::Graph g = graph::make_grid2d(4, 4).graph;
  const la::DenseMatrix x(16, 3);
  const la::DenseMatrix y_wrong(16, 2);
  EXPECT_THROW((void)spectral_edge_scale_factor(g, x, y_wrong),
               ContractViolation);
  const la::DenseMatrix x_wrong_rows(15, 3);
  const la::DenseMatrix y(16, 3);
  EXPECT_THROW((void)spectral_edge_scale_factor(g, x_wrong_rows, y),
               ContractViolation);
  // Zero voltage columns are rejected.
  EXPECT_THROW((void)spectral_edge_scale_factor(g, x, y), ContractViolation);
}

}  // namespace
}  // namespace sgl::core
