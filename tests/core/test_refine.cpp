// Unit tests for stagewise per-edge weight refinement.
#include <gtest/gtest.h>

#include "core/refine.hpp"
#include "core/sgl.hpp"
#include "graph/generators.hpp"
#include "measure/measurements.hpp"
#include "spectral/objective.hpp"

namespace sgl::core {
namespace {

TEST(Refine, ImprovesObjectiveAfterSgl) {
  const graph::Graph truth = graph::make_grid2d(12, 12).graph;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 40;
  const measure::Measurements m = measure::generate_measurements(truth, mopt);

  SglResult learned = learn_graph(m.voltages, m.currents);
  spectral::ObjectiveOptions oopt;
  oopt.num_eigenvalues = 30;
  const Real f_before =
      spectral::graphical_lasso_objective(learned.learned, m.voltages, oopt)
          .value();

  RefineOptions ropt;
  ropt.embedding.r = 15;
  const RefineResult r = refine_edge_weights(learned.learned, m.voltages, ropt);
  EXPECT_GE(r.iterations, 1);
  const Real f_after =
      spectral::graphical_lasso_objective(learned.learned, m.voltages, oopt)
          .value();
  EXPECT_GT(f_after, f_before);
}

TEST(Refine, MoreIterationsDoNotHurtTheObjective) {
  // The max log-ratio is not monotone step to step (edges are coupled),
  // but the objective after a long refinement run must be at least as
  // good as after a single step.
  const graph::Graph truth = graph::make_grid2d(10, 10).graph;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 30;
  const measure::Measurements m = measure::generate_measurements(truth, mopt);
  const SglResult learned = learn_graph(m.voltages, m.currents);
  spectral::ObjectiveOptions oopt;
  oopt.num_eigenvalues = 25;

  RefineOptions one;
  one.max_iterations = 1;
  one.embedding.r = 12;
  graph::Graph g1 = learned.learned;
  refine_edge_weights(g1, m.voltages, one);
  const Real f_one =
      spectral::graphical_lasso_objective(g1, m.voltages, oopt).value();

  RefineOptions many = one;
  many.max_iterations = 25;
  graph::Graph g2 = learned.learned;
  refine_edge_weights(g2, m.voltages, many);
  const Real f_many =
      spectral::graphical_lasso_objective(g2, m.voltages, oopt).value();
  EXPECT_GE(f_many, f_one - std::abs(f_one) * 0.02);
}

TEST(Refine, KeepsTopologyAndPositivity) {
  const graph::Graph truth = graph::make_grid2d(9, 9).graph;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 25;
  const measure::Measurements m = measure::generate_measurements(truth, mopt);
  SglResult learned = learn_graph(m.voltages, m.currents);
  const Index edges_before = learned.learned.num_edges();

  refine_edge_weights(learned.learned, m.voltages);
  EXPECT_EQ(learned.learned.num_edges(), edges_before);
  for (const graph::Edge& e : learned.learned.edges()) EXPECT_GT(e.weight, 0.0);
}

TEST(Refine, PerIterationChangeIsClamped) {
  const graph::Graph truth = graph::make_grid2d(8, 8).graph;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 20;
  const measure::Measurements m = measure::generate_measurements(truth, mopt);
  SglResult learned = learn_graph(m.voltages, m.currents);
  const graph::Graph before = learned.learned;

  RefineOptions ropt;
  ropt.max_iterations = 1;
  ropt.max_change = 1.5;
  refine_edge_weights(learned.learned, m.voltages, ropt);
  for (Index e = 0; e < before.num_edges(); ++e) {
    const Real ratio =
        learned.learned.edge(e).weight / before.edge(e).weight;
    EXPECT_GE(ratio, 1.0 / 1.5 - 1e-9);
    EXPECT_LE(ratio, 1.5 + 1e-9);
  }
}

TEST(Refine, Contracts) {
  graph::Graph g = graph::make_path(5);
  la::DenseMatrix wrong_rows(4, 2);
  EXPECT_THROW(refine_edge_weights(g, wrong_rows), ContractViolation);
  la::DenseMatrix x(5, 2);
  RefineOptions bad;
  bad.step = 0.0;
  EXPECT_THROW(refine_edge_weights(g, x, bad), ContractViolation);
  bad.step = 0.5;
  bad.max_change = 1.0;
  EXPECT_THROW(refine_edge_weights(g, x, bad), ContractViolation);
}

}  // namespace
}  // namespace sgl::core
