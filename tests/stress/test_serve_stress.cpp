// Concurrent-client stress for the serving layer (TSan-targeted, like
// the rest of the stress module): many oversubscribed workers hammer one
// ServeEngine with mixed solve / effective-resistance traffic while the
// micro-batching combiner coalesces them into shared apply_block calls.
// Every concurrent answer must be bitwise equal to a serial replay of
// the same request — the combiner may change BATCH COMPOSITION, never
// bytes. Also covered: LRU eviction/refill under concurrency and the
// typed-error round trip (a bad request fails alone; batchmates still
// get their answers).
#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "graph/generators.hpp"
#include "serve/serve_engine.hpp"

namespace sgl::serve {
namespace {

constexpr Index kOversubscribedThreads = 16;

graph::Graph grid(Index nx, Index ny) {
  return graph::make_grid2d(nx, ny).graph;
}

TEST(ServeStress, ConcurrentMixedTrafficIsBitwiseSerial) {
  const graph::Graph g = grid(14, 14);
  const Index n = g.num_nodes();
  constexpr Index kRequests = 96;

  // Deterministic request plan: every 3rd request is a solve, the rest
  // are resistance probes with varying pairs.
  struct Plan {
    bool is_solve;
    Index s, t;
  };
  std::vector<Plan> plan;
  plan.reserve(static_cast<std::size_t>(kRequests));
  for (Index i = 0; i < kRequests; ++i) {
    plan.push_back({i % 3 == 0, i % n, (i * 7 + 31) % n});
  }
  for (Plan& p : plan) {
    if (p.s == p.t) p.t = (p.t + 1) % n;
  }

  const auto rhs_for = [n](const Plan& p) {
    la::Vector rhs(static_cast<std::size_t>(n), 0.0);
    rhs[static_cast<std::size_t>(p.s)] = 1.0;
    rhs[static_cast<std::size_t>(p.t)] = -1.0;
    return rhs;
  };

  // Serial replay: width-1 engine, one thread, one request at a time.
  ServeOptions serial_options;
  serial_options.batch_width = 1;
  ServeEngine serial(serial_options);
  (void)serial.load_graph(g);
  std::vector<la::Vector> expected_solve(plan.size());
  std::vector<Real> expected_value(plan.size(), 0.0);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (plan[i].is_solve) {
      expected_solve[i] = serial.solve(rhs_for(plan[i]));
    } else {
      expected_value[i] = serial.effective_resistance(plan[i].s, plan[i].t);
    }
  }

  // Concurrent run against a batching engine, several times so batches
  // form with different compositions.
  for (int round = 0; round < 3; ++round) {
    ServeOptions options;
    options.batch_width = 8;
    options.flush_deadline_us = 100;
    ServeEngine engine(options);
    (void)engine.load_graph(g);

    std::vector<la::Vector> got_solve(plan.size());
    std::vector<Real> got_value(plan.size(), 0.0);
    parallel::parallel_for(
        0, static_cast<Index>(plan.size()), kOversubscribedThreads,
        [&](Index i) {
          const Plan& p = plan[static_cast<std::size_t>(i)];
          if (p.is_solve) {
            got_solve[static_cast<std::size_t>(i)] = engine.solve(rhs_for(p));
          } else {
            got_value[static_cast<std::size_t>(i)] =
                engine.effective_resistance(p.s, p.t);
          }
        });

    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (plan[i].is_solve) {
        ASSERT_EQ(got_solve[i].size(), expected_solve[i].size());
        for (std::size_t k = 0; k < got_solve[i].size(); ++k) {
          ASSERT_EQ(got_solve[i][k], expected_solve[i][k])
              << "round " << round << " request " << i << " entry " << k;
        }
      } else {
        ASSERT_EQ(got_value[i], expected_value[i])
            << "round " << round << " request " << i;
      }
    }

    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.requests, kRequests);
    EXPECT_EQ(stats.batched_columns, kRequests);  // every request served once
    EXPECT_EQ(stats.errors, 0);
    EXPECT_LE(stats.max_batch_width, options.batch_width);
  }
}

TEST(ServeStress, BadRequestsFailAloneAmongHealthyTraffic) {
  ServeOptions options;
  options.batch_width = 8;
  ServeEngine engine(options);
  (void)engine.load_graph(grid(10, 10));

  const Real expected = [&] {
    ServeOptions serial_options;
    serial_options.batch_width = 1;
    ServeEngine serial(serial_options);
    (void)serial.load_graph(grid(10, 10));
    return serial.effective_resistance(0, 99);
  }();

  std::atomic<int> typed_errors{0};
  std::atomic<int> wrong_errors{0};
  parallel::parallel_for(0, 64, kOversubscribedThreads, [&](Index i) {
    if (i % 4 == 0) {
      // Invalid pair: must come back as kBadRequest, nothing else.
      try {
        (void)engine.effective_resistance(5, 5);
        wrong_errors.fetch_add(1);
      } catch (const SglError& e) {
        (e.code() == ErrorCode::kBadRequest ? typed_errors : wrong_errors)
            .fetch_add(1);
      }
    } else {
      // Healthy probes keep getting exact answers throughout.
      const Real r = engine.effective_resistance(0, 99);
      if (r != expected) wrong_errors.fetch_add(1);
    }
  });
  EXPECT_EQ(typed_errors.load(), 16);
  EXPECT_EQ(wrong_errors.load(), 0);
  EXPECT_EQ(engine.stats().errors, 16);
}

TEST(ServeStress, LruEvictionAndRefillUnderConcurrency) {
  ServeOptions options;
  options.cache_capacity = 2;
  options.batch_width = 4;
  ServeEngine engine(options);

  const graph::GraphKey keys[3] = {
      engine.load_graph(grid(6, 6)),
      engine.load_graph(grid(7, 6)),
      engine.load_graph(grid(8, 6)),
  };
  const Index nodes[3] = {36, 42, 48};

  // Serial reference values, one engine per graph so each is a clean
  // single-graph run.
  Real expected[3];
  for (int k = 0; k < 3; ++k) {
    ServeOptions serial_options;
    serial_options.batch_width = 1;
    ServeEngine serial(serial_options);
    (void)serial.load_graph(grid(static_cast<Index>(6 + k), 6));
    expected[k] = serial.effective_resistance(0, nodes[k] - 1);
  }

  // Key-pinned workers interleave 3 graphs through a 2-entry cache,
  // forcing evictions and refills, while asserting every answer stays
  // exact. shared_ptr-held solvers make eviction safe mid-batch.
  std::atomic<int> mismatches{0};
  for (int round = 0; round < 4; ++round) {
    parallel::parallel_for(0, 24, kOversubscribedThreads, [&](Index i) {
      const int k = static_cast<int>(i % 3);
      const Real r = engine.effective_resistance(0, nodes[k] - 1, keys[k]);
      if (r != expected[k]) mismatches.fetch_add(1);
    });
  }
  EXPECT_EQ(mismatches.load(), 0);

  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.errors, 0);
  EXPECT_GE(stats.cache_evictions, 1);  // 3 graphs through 2 slots
  EXPECT_EQ(stats.cache_misses, stats.cache_evictions + 2);
}

}  // namespace
}  // namespace sgl::serve
