// Concurrency stress tests, designed to make latent data races fire
// under ThreadSanitizer (the ci-tsan leg runs these with a forced
// 4-worker pool; see DESIGN.md §7). Each test also asserts the bitwise
// determinism contract — concurrent results must equal the serial
// reference exactly — so the suite is a functional test everywhere and a
// race detector under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "knn/brute_force.hpp"
#include "knn/hnsw.hpp"
#include "la/multi_vector.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl {
namespace {

/// Oversubscription factor: more requested workers than any CI runner has
/// cores, so the pool's queue/wake machinery is contended for real.
constexpr Index kOversubscribedThreads = 16;

la::DenseMatrix random_points(Index n, Index dim, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix x(n, dim);
  for (Index j = 0; j < dim; ++j)
    for (Index i = 0; i < n; ++i) x(i, j) = rng.normal();
  return x;
}

la::MultiVector random_rhs(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  la::MultiVector b(rows, cols);
  for (Index j = 0; j < cols; ++j)
    for (Real& v : b.col(j)) v = rng.normal();
  return b;
}

TEST(Stress, NestedParallelForUnderOversubscription) {
  // Nested regions degrade to serial on the owning worker; under
  // oversubscription every pool code path (enqueue, dynamic chunk
  // hand-out, nesting detection, completion notify) is contended.
  constexpr Index outer = 96;
  constexpr Index inner = 64;
  for (int round = 0; round < 10; ++round) {
    std::vector<std::atomic<int>> hits(outer * inner);
    parallel::parallel_for(0, outer, kOversubscribedThreads, [&](Index o) {
      parallel::parallel_for(0, inner, kOversubscribedThreads, [&](Index i) {
        hits[static_cast<std::size_t>(o * inner + i)].fetch_add(
            1, std::memory_order_relaxed);
      });
    });
    for (Index i = 0; i < outer * inner; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "round " << round;
  }
}

TEST(Stress, ExceptionsInFlightUnderOversubscription) {
  // Several workers throw while others are still executing (some inside
  // nested regions). The first exception must surface on the caller, the
  // pool must survive, and the sync state (remaining-counter, error slot)
  // must not race — this is the test TSan watches most closely.
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(
        parallel::parallel_for(0, 256, kOversubscribedThreads, [&](Index i) {
          if (i % 3 == 0) {
            parallel::parallel_for(0, 32, kOversubscribedThreads, [&](Index j) {
              if (j == 31 && i % 9 == 0) throw std::runtime_error("nested");
            });
          }
          if (i % 5 == 0) throw std::runtime_error("outer");
        }),
        std::runtime_error);
    // The pool must be fully usable after the unwound region.
    std::atomic<Index> sum{0};
    parallel::parallel_for(0, 64, kOversubscribedThreads, [&](Index i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2) << "round " << round;
  }
}

TEST(Stress, ConcurrentHnswQueriesMatchSerial) {
  // Many concurrent batched + single-point queries against one shared
  // index: knn_all's per-slot scratch and search_point's thread_local
  // scratch must never alias across workers.
  const la::DenseMatrix points = random_points(300, 8, 11);
  const knn::HnswIndex index(points);
  const knn::KnnResult reference = index.knn_all(5, 1);

  parallel::parallel_for(0, 12, kOversubscribedThreads, [&](Index task) {
    if (task % 2 == 0) {
      const knn::KnnResult got = index.knn_all(5);
      ASSERT_EQ(got.neighbor, reference.neighbor);
      ASSERT_EQ(got.distance_squared, reference.distance_squared);
    } else {
      const Index q = (task * 37) % index.num_points();
      const auto got = index.search_point(q, 5);
      ASSERT_EQ(to_index(got.size()), 5);
      for (const auto& [d2, node] : got) {
        ASSERT_NE(node, q);
        ASSERT_GE(d2, 0.0);
      }
    }
  });
}

TEST(Stress, ParallelHnswBuildUnderOversubscriptionThenQueries) {
  // Generation-parallel construction with far more requested workers
  // than cores: speculation workers read the frozen graph while the
  // orchestrator waits, then the committed graph is hammered with
  // concurrent queries. Under TSan this exercises the build's
  // speculation/commit boundary; everywhere it asserts the graph is the
  // serial one edge for edge.
  const la::DenseMatrix points = random_points(900, 6, 29);
  const knn::HnswIndex serial(points, {}, 1);
  const knn::KnnResult reference = serial.knn_all(4, 1);

  for (int round = 0; round < 3; ++round) {
    const knn::HnswIndex index(points, {}, kOversubscribedThreads);
    ASSERT_EQ(index.entry_point(), serial.entry_point()) << "round " << round;
    ASSERT_EQ(index.max_level(), serial.max_level()) << "round " << round;
    for (Index node = 0; node < 900; ++node)
      for (Index level = 0; level <= serial.level_of(node); ++level)
        ASSERT_EQ(index.links(node, level), serial.links(node, level))
            << "node " << node << " level " << level << " round " << round;

    parallel::parallel_for(0, 8, kOversubscribedThreads, [&](Index task) {
      if (task % 2 == 0) {
        const knn::KnnResult got = index.knn_all(4);
        ASSERT_EQ(got.neighbor, reference.neighbor);
        ASSERT_EQ(got.distance_squared, reference.distance_squared);
      } else {
        const Index q = (task * 53) % index.num_points();
        const auto got = index.search_point(q, 4);
        ASSERT_EQ(to_index(got.size()), 4);
      }
    });
  }
}

class StressSolverHammer
    : public ::testing::TestWithParam<solver::LaplacianMethod> {};

TEST_P(StressSolverHammer, ConcurrentApplyBlockAndStatsReads) {
  // One shared solver, hammered with concurrent apply()/apply_block()
  // calls interleaved with diagnostic reads (last_pcg_iterations,
  // pcg_block_stats) — the exact pattern that raced on the pre-mutex
  // relaxed stat counters. Results must be bitwise equal to the serial
  // reference, and every stats snapshot internally consistent.
  const graph::Graph g = graph::make_grid2d(12, 12).graph;
  solver::LaplacianSolverOptions options;
  options.method = GetParam();
  const solver::LaplacianPinvSolver solver(g, options);

  const Index n = g.num_nodes();
  constexpr Index kCols = 4;
  const la::MultiVector y = random_rhs(n, kCols, 23);
  const la::Vector y0(y.col(0).begin(), y.col(0).end());
  la::MultiVector reference(n, kCols);
  solver.apply_block(y.view(), reference.view(), 1);

  parallel::parallel_for(0, 16, kOversubscribedThreads, [&](Index task) {
    if (task % 4 == 3) {
      // Torn-snapshot detector: max over one solve's columns can never
      // exceed the same solve's total.
      const solver::PcgBlockStats stats = solver.pcg_block_stats();
      ASSERT_LE(stats.max_iterations, stats.total_iterations);
      ASSERT_LE(stats.converged_columns, std::max(stats.columns, Index{1}));
      ASSERT_GE(solver.last_pcg_iterations(), 0);
    } else if (task % 4 == 2) {
      const la::Vector x = solver.apply(y0);
      for (Index i = 0; i < n; ++i)
        ASSERT_EQ(x[static_cast<std::size_t>(i)], reference(i, 0));
    } else {
      la::MultiVector x(n, kCols);
      solver.apply_block(y.view(), x.view());
      for (Index j = 0; j < kCols; ++j)
        for (Index i = 0; i < n; ++i)
          ASSERT_EQ(x(i, j), reference(i, j)) << "col " << j;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Methods, StressSolverHammer,
    ::testing::Values(solver::LaplacianMethod::kCholesky,
                      solver::LaplacianMethod::kPcgJacobi,
                      solver::LaplacianMethod::kPcgIc0),
    [](const auto& info) {
      switch (info.param) {
        case solver::LaplacianMethod::kCholesky:
          return std::string("Cholesky");
        case solver::LaplacianMethod::kPcgJacobi:
          return std::string("PcgJacobi");
        default:
          return std::string("PcgIc0");
      }
    });

}  // namespace
}  // namespace sgl
