// Unit tests for heavy-edge-matching coarsening.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/coarsening.hpp"
#include "graph/components.hpp"
#include "eig/lanczos.hpp"
#include "graph/generators.hpp"

namespace sgl::graph {
namespace {

TEST(Coarsening, HalvesNodeCountOnMatchableGraphs) {
  const Graph g = make_grid2d(10, 10).graph;
  const CoarseningResult r = coarsen_heavy_edge_matching(g);
  EXPECT_GE(r.coarse.num_nodes(), 50);
  EXPECT_LT(r.coarse.num_nodes(), 100);
}

TEST(Coarsening, MapIsSurjectiveAndInRange) {
  const Graph g = make_grid2d(8, 7).graph;
  const CoarseningResult r = coarsen_heavy_edge_matching(g);
  std::vector<bool> hit(static_cast<std::size_t>(r.coarse.num_nodes()), false);
  for (const Index c : r.fine_to_coarse) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, r.coarse.num_nodes());
    hit[static_cast<std::size_t>(c)] = true;
  }
  for (const bool h : hit) EXPECT_TRUE(h);
}

TEST(Coarsening, AggregatesHaveAtMostTwoNodes) {
  const Graph g = make_grid2d(9, 9).graph;
  const CoarseningResult r = coarsen_heavy_edge_matching(g);
  std::vector<Index> count(static_cast<std::size_t>(r.coarse.num_nodes()), 0);
  for (const Index c : r.fine_to_coarse) ++count[static_cast<std::size_t>(c)];
  for (const Index c : count) EXPECT_LE(c, 2);
}

TEST(Coarsening, PreservesConnectivity) {
  const Graph g = make_grid2d(12, 12).graph;
  const CoarseningResult r = coarsen_heavy_edge_matching(g);
  EXPECT_TRUE(is_connected(r.coarse));
}

TEST(Coarsening, GalerkinQuadraticFormAgreesOnAggregateConstants) {
  // For any coarse vector z, zᵀ L_c z must equal (Pz)ᵀ L (Pz).
  const Graph g = make_circuit_grid(8, 8, 0, 0.5, 5.0, 3).graph;
  const CoarseningResult r = coarsen_heavy_edge_matching(g);
  Rng rng(5);
  la::Vector z(static_cast<std::size_t>(r.coarse.num_nodes()));
  for (auto& v : z) v = rng.normal();
  la::Vector pz(static_cast<std::size_t>(g.num_nodes()));
  for (Index v = 0; v < g.num_nodes(); ++v)
    pz[static_cast<std::size_t>(v)] =
        z[static_cast<std::size_t>(r.fine_to_coarse[static_cast<std::size_t>(v)])];
  EXPECT_NEAR(r.coarse.laplacian().quadratic_form(z),
              g.laplacian().quadratic_form(pz), 1e-9);
}

TEST(Coarsening, HeavyEdgesCollapseFirst) {
  // A graph of heavy pairs connected by light edges: matching must merge
  // exactly the heavy pairs.
  Graph g(6);
  g.add_edge(0, 1, 100.0);
  g.add_edge(2, 3, 100.0);
  g.add_edge(4, 5, 100.0);
  g.add_edge(1, 2, 0.1);
  g.add_edge(3, 4, 0.1);
  const CoarseningResult r = coarsen_heavy_edge_matching(g);
  EXPECT_EQ(r.coarse.num_nodes(), 3);
  EXPECT_EQ(r.fine_to_coarse[0], r.fine_to_coarse[1]);
  EXPECT_EQ(r.fine_to_coarse[2], r.fine_to_coarse[3]);
  EXPECT_EQ(r.fine_to_coarse[4], r.fine_to_coarse[5]);
}

TEST(Coarsening, SingletonGraphSurvives) {
  const CoarseningResult r = coarsen_heavy_edge_matching(Graph(1));
  EXPECT_EQ(r.coarse.num_nodes(), 1);
  EXPECT_EQ(r.fine_to_coarse[0], 0);
}

TEST(Coarsening, CoarsenToSizeReachesTarget) {
  const Graph g = make_grid2d(16, 16).graph;  // 256 nodes
  const CoarseningResult r = coarsen_to_size(g, 40);
  EXPECT_LE(r.coarse.num_nodes(), 40);
  EXPECT_TRUE(is_connected(r.coarse));
  // Composed map still valid.
  for (const Index c : r.fine_to_coarse) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, r.coarse.num_nodes());
  }
}

TEST(Coarsening, CoarseSpectrumTracksFineLowEnd) {
  // Piecewise-constant Galerkin coarsening approximately preserves the
  // smallest nontrivial eigenvalue scale (within a small constant).
  const Graph g = make_grid2d(14, 14).graph;
  const CoarseningResult r = coarsen_heavy_edge_matching(g);
  const sgl::solver::LaplacianPinvSolver pinv_fine(g);
  const sgl::solver::LaplacianPinvSolver pinv_coarse(r.coarse);
  const Real l2_fine =
      sgl::eig::smallest_laplacian_eigenpairs(pinv_fine, 1).eigenvalues[0];
  const Real l2_coarse =
      sgl::eig::smallest_laplacian_eigenpairs(pinv_coarse, 1).eigenvalues[0];
  EXPECT_GT(l2_coarse, 0.5 * l2_fine);
  EXPECT_LT(l2_coarse, 6.0 * l2_fine);
}

TEST(Coarsening, DeterministicPerSeed) {
  const Graph g = make_grid2d(9, 8).graph;
  const CoarseningResult a = coarsen_heavy_edge_matching(g, 7);
  const CoarseningResult b = coarsen_heavy_edge_matching(g, 7);
  EXPECT_EQ(a.fine_to_coarse, b.fine_to_coarse);
  EXPECT_EQ(a.coarse.num_edges(), b.coarse.num_edges());
}

TEST(Hierarchy, ShrinksMonotonicallyToTarget) {
  const Graph g = make_grid2d(16, 16).graph;  // 256 nodes
  const CoarseningHierarchy h = build_coarsening_hierarchy(g, 30);
  ASSERT_GE(h.num_levels(), 2);
  Index previous = g.num_nodes();
  for (const HierarchyLevel& level : h.levels) {
    EXPECT_LT(level.graph.num_nodes(), previous);
    // Each level's map takes the previous (finer) level's nodes.
    EXPECT_EQ(to_index(level.fine_to_coarse.size()), previous);
    for (const Index c : level.fine_to_coarse) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, level.graph.num_nodes());
    }
    EXPECT_TRUE(is_connected(level.graph));
    previous = level.graph.num_nodes();
  }
  EXPECT_LE(h.coarsest(g).num_nodes(), 30);
}

TEST(Hierarchy, DeterministicPerSeed) {
  const Graph g = make_grid2d(14, 13).graph;
  const CoarseningHierarchy a = build_coarsening_hierarchy(g, 25, 99);
  const CoarseningHierarchy b = build_coarsening_hierarchy(g, 25, 99);
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (Index k = 0; k < a.num_levels(); ++k) {
    EXPECT_EQ(a.levels[static_cast<std::size_t>(k)].fine_to_coarse,
              b.levels[static_cast<std::size_t>(k)].fine_to_coarse);
  }
}

TEST(Hierarchy, LargeTargetYieldsNoLevels) {
  const Graph g = make_grid2d(5, 5).graph;
  const CoarseningHierarchy h = build_coarsening_hierarchy(g, 25);
  EXPECT_EQ(h.num_levels(), 0);
  // With no levels the coarsest graph is the input itself.
  EXPECT_EQ(h.coarsest(g).num_nodes(), 25);
}

}  // namespace
}  // namespace sgl::graph
