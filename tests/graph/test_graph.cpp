// Unit tests for the core Graph type and its derived matrices.
#include <gtest/gtest.h>

#include "graph/graph.hpp"

namespace sgl::graph {
namespace {

Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  return g;
}

TEST(Graph, ConstructionAndCounts) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.density(), 1.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.0);
}

TEST(Graph, AddEdgeCanonicalizesEndpoints) {
  Graph g(4);
  g.add_edge(3, 1, 2.0);
  EXPECT_EQ(g.edge(0).s, 1);
  EXPECT_EQ(g.edge(0).t, 3);
}

TEST(Graph, AddEdgeContracts) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), ContractViolation);   // self loop
  EXPECT_THROW(g.add_edge(0, 3, 1.0), ContractViolation);   // out of range
  EXPECT_THROW(g.add_edge(0, 1, 0.0), ContractViolation);   // zero weight
  EXPECT_THROW(g.add_edge(0, 1, -1.0), ContractViolation);  // negative
}

TEST(Graph, WeightedDegrees) {
  const Graph g = triangle();
  const la::Vector d = g.weighted_degrees();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(Graph, LaplacianRowSumsAreZero) {
  const Graph g = triangle();
  const la::CsrMatrix lap = g.laplacian();
  const la::Vector ones(3, 1.0);
  const la::Vector row_sums = lap.multiply(ones);
  for (const Real v : row_sums) EXPECT_NEAR(v, 0.0, 1e-14);
}

TEST(Graph, LaplacianIsSymmetricAndMatchesStamp) {
  const Graph g = triangle();
  const la::CsrMatrix lap = g.laplacian();
  EXPECT_TRUE(lap.is_symmetric());
  EXPECT_DOUBLE_EQ(lap.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(lap.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(lap.at(0, 2), -3.0);
  EXPECT_DOUBLE_EQ(lap.at(1, 2), -2.0);
}

TEST(Graph, LaplacianQuadraticFormMatchesEq1) {
  // xᵀLx = Σ w_st (x_s − x_t)² (paper eq. 1).
  const Graph g = triangle();
  const la::Vector x{1.0, 2.0, 4.0};
  const Real expected = 1.0 * 1.0 + 2.0 * 4.0 + 3.0 * 9.0;
  EXPECT_NEAR(g.laplacian().quadratic_form(x), expected, 1e-12);
}

TEST(Graph, LaplacianIsPositiveSemidefinite) {
  const Graph g = triangle();
  const la::CsrMatrix lap = g.laplacian();
  // Any vector gives a nonnegative quadratic form.
  const std::vector<la::Vector> probes{{1.0, -1.0, 0.5}, {-3.0, 2.0, 2.0}};
  for (const la::Vector& x : probes) {
    EXPECT_GE(lap.quadratic_form(x), -1e-12);
  }
}

TEST(Graph, ParallelEdgesSumInLaplacian) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 2.5);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.laplacian().at(0, 1), -3.5);
}

TEST(Graph, IsolatedNodesKeepDiagonalSlot) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const la::CsrMatrix lap = g.laplacian();
  EXPECT_EQ(lap.rows(), 3);
  EXPECT_DOUBLE_EQ(lap.at(2, 2), 0.0);
  // Structural slot exists even though the value is zero.
  EXPECT_EQ(lap.row_ptr()[3] - lap.row_ptr()[2], 1);
}

TEST(Graph, AdjacencyMatrix) {
  const Graph g = triangle();
  const la::CsrMatrix w = g.adjacency();
  EXPECT_DOUBLE_EQ(w.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.at(0, 0), 0.0);
  EXPECT_TRUE(w.is_symmetric());
}

TEST(Graph, AdjacencyListRoundTrip) {
  const Graph g = triangle();
  const AdjacencyList adj = g.adjacency_list();
  EXPECT_EQ(adj.num_nodes(), 3);
  EXPECT_EQ(adj.degree(0), 2);
  EXPECT_EQ(adj.degree(1), 2);
  EXPECT_EQ(adj.degree(2), 2);
  // Edge ids attached to the right endpoints.
  for (Index u = 0; u < 3; ++u) {
    for (Index k = adj.row_ptr[static_cast<std::size_t>(u)];
         k < adj.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      const Edge& e = g.edge(adj.edge_id[static_cast<std::size_t>(k)]);
      const Index v = adj.neighbor[static_cast<std::size_t>(k)];
      EXPECT_TRUE((e.s == u && e.t == v) || (e.s == v && e.t == u));
      EXPECT_DOUBLE_EQ(adj.weight[static_cast<std::size_t>(k)], e.weight);
    }
  }
}

TEST(Graph, ScaleWeights) {
  Graph g = triangle();
  g.scale_weights(2.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 12.0);
  EXPECT_THROW(g.scale_weights(0.0), ContractViolation);
}

TEST(Graph, SetWeight) {
  Graph g = triangle();
  g.set_weight(1, 10.0);
  EXPECT_DOUBLE_EQ(g.edge(1).weight, 10.0);
  EXPECT_THROW(g.set_weight(5, 1.0), ContractViolation);
  EXPECT_THROW(g.set_weight(0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace sgl::graph
