// Unit tests for MatrixMarket I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"

namespace sgl::graph {
namespace {

class MatrixMarketTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void write_file(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(MatrixMarketTest, ReadsGeneralRealCoordinate) {
  const std::string path = temp_path("general.mtx");
  write_file(path,
             "%%MatrixMarket matrix coordinate real general\n"
             "% comment\n"
             "3 3 3\n"
             "1 1 2.0\n"
             "2 3 -1.5\n"
             "3 1 4.0\n");
  const la::CsrMatrix m = read_matrix_market(path);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -1.5);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
}

TEST_F(MatrixMarketTest, SymmetricStorageIsExpanded) {
  const std::string path = temp_path("sym.mtx");
  write_file(path,
             "%%MatrixMarket matrix coordinate real symmetric\n"
             "2 2 2\n"
             "1 1 1.0\n"
             "2 1 -3.0\n");
  const la::CsrMatrix m = read_matrix_market(path);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -3.0);
}

TEST_F(MatrixMarketTest, PatternFileGetsUnitWeights) {
  const std::string path = temp_path("pattern.mtx");
  write_file(path,
             "%%MatrixMarket matrix coordinate pattern symmetric\n"
             "3 3 2\n"
             "2 1\n"
             "3 2\n");
  const Graph g = read_graph_matrix_market(
      path, MatrixInterpretation::kAdjacency);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 1.0);
}

TEST_F(MatrixMarketTest, LaplacianInterpretationUsesNegativeOffdiagonals) {
  const std::string path = temp_path("lap.mtx");
  write_file(path,
             "%%MatrixMarket matrix coordinate real symmetric\n"
             "3 3 5\n"
             "1 1 3.0\n"
             "2 2 1.0\n"
             "3 3 2.0\n"
             "2 1 -1.0\n"
             "3 1 -2.0\n");
  const Graph g = read_graph_matrix_market(path);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.laplacian().at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(g.laplacian().at(0, 2), -2.0);
}

TEST_F(MatrixMarketTest, LaplacianRoundTrip) {
  const Graph original = make_grid2d(5, 4).graph;
  const std::string path = temp_path("roundtrip.mtx");
  write_laplacian_matrix_market(original, path);
  const Graph loaded = read_graph_matrix_market(path);
  ASSERT_EQ(loaded.num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  const la::CsrMatrix la = original.laplacian();
  const la::CsrMatrix lb = loaded.laplacian();
  for (Index i = 0; i < la.rows(); ++i)
    for (Index j = 0; j < la.cols(); ++j)
      EXPECT_NEAR(la.at(i, j), lb.at(i, j), 1e-12);
}

TEST_F(MatrixMarketTest, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market(temp_path("nonexistent.mtx")),
               ContractViolation);
}

TEST_F(MatrixMarketTest, BadBannerThrows) {
  const std::string path = temp_path("bad.mtx");
  write_file(path, "%%NotMatrixMarket nope\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(path), ContractViolation);
}

TEST_F(MatrixMarketTest, ArrayFormatRejected) {
  const std::string path = temp_path("array.mtx");
  write_file(path, "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market(path), ContractViolation);
}

TEST_F(MatrixMarketTest, EntryOutOfRangeThrows) {
  const std::string path = temp_path("oob.mtx");
  write_file(path,
             "%%MatrixMarket matrix coordinate real general\n"
             "2 2 1\n"
             "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(path), ContractViolation);
}

TEST_F(MatrixMarketTest, GraphFromMatrixRequiresSquare) {
  const la::CsrMatrix rect = la::CsrMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
  EXPECT_THROW(graph_from_matrix(rect, MatrixInterpretation::kAdjacency),
               ContractViolation);
}

}  // namespace
}  // namespace sgl::graph
