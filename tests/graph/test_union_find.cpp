// Unit tests for the disjoint-set forest.
#include <gtest/gtest.h>

#include "graph/union_find.hpp"

namespace sgl::graph {
namespace {

TEST(UnionFind, StartsAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  for (Index i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_sets(), 2);
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_EQ(uf.num_sets(), 1);
  EXPECT_TRUE(uf.connected(0, 2));
}

TEST(UnionFind, UniteSameSetReturnsFalse) {
  UnionFind uf(3);
  uf.unite(0, 1);
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.num_sets(), 2);
}

TEST(UnionFind, FindOutOfRangeThrows) {
  UnionFind uf(2);
  EXPECT_THROW((void)uf.find(2), ContractViolation);
  EXPECT_THROW((void)uf.find(-1), ContractViolation);
}

TEST(UnionFind, LargeChainCollapses) {
  const Index n = 10000;
  UnionFind uf(n);
  for (Index i = 0; i + 1 < n; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1);
  EXPECT_EQ(uf.find(0), uf.find(n - 1));
}

}  // namespace
}  // namespace sgl::graph
