// Unit tests for spanning-forest extraction, including brute-force
// optimality checks on small random graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "graph/components.hpp"
#include "graph/mst.hpp"
#include "graph/union_find.hpp"

namespace sgl::graph {
namespace {

Real weight_of(const Graph& g, const std::vector<Index>& ids) {
  Real acc = 0.0;
  for (const Index id : ids) acc += g.edge(id).weight;
  return acc;
}

/// Exhaustive maximum spanning tree weight by trying all edge subsets of
/// size n−1 (only for tiny graphs).
Real brute_force_max_tree_weight(const Graph& g) {
  const Index n = g.num_nodes();
  const Index m = g.num_edges();
  Real best = -1.0;
  std::vector<Index> pick(static_cast<std::size_t>(n) - 1);
  // Enumerate all C(m, n-1) subsets via combinations.
  std::vector<Index> comb(static_cast<std::size_t>(n) - 1);
  std::iota(comb.begin(), comb.end(), Index{0});
  const auto next_combination = [&]() {
    Index i = to_index(comb.size()) - 1;
    while (i >= 0 && comb[static_cast<std::size_t>(i)] ==
                         m - (to_index(comb.size()) - i)) {
      --i;
    }
    if (i < 0) return false;
    ++comb[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < to_index(comb.size()); ++j)
      comb[static_cast<std::size_t>(j)] = comb[static_cast<std::size_t>(j - 1)] + 1;
    return true;
  };
  do {
    UnionFind uf(n);
    Real w = 0.0;
    for (const Index id : comb) {
      const Edge& e = g.edge(id);
      uf.unite(e.s, e.t);
      w += e.weight;
    }
    if (uf.num_sets() == 1) best = std::max(best, w);
  } while (next_combination());
  return best;
}

TEST(Mst, PathGraphTreeIsItself) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  const auto ids = maximum_spanning_forest(g);
  EXPECT_EQ(ids.size(), 3u);
}

TEST(Mst, MaximumPicksHeaviestEdges) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  const auto ids = maximum_spanning_forest(g);
  EXPECT_DOUBLE_EQ(weight_of(g, ids), 5.0);
}

TEST(Mst, MinimumPicksLightestEdges) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  const auto ids = minimum_spanning_forest(g);
  EXPECT_DOUBLE_EQ(weight_of(g, ids), 3.0);
}

TEST(Mst, ForestOnDisconnectedGraph) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(3, 4, 1.0);
  const auto ids = maximum_spanning_forest(g);
  EXPECT_EQ(ids.size(), 3u);  // n − components = 5 − 2
}

TEST(Mst, SubgraphFromEdgesPreservesWeights) {
  Graph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  const Graph sub = subgraph_from_edges(g, {1});
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_DOUBLE_EQ(sub.edge(0).weight, 2.5);
}

TEST(Mst, TreeSpansConnectedGraph) {
  Rng rng(1);
  const Index n = 30;
  Graph g(n);
  for (Index i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, rng.uniform(0.1, 2.0));
  for (int extra = 0; extra < 40; ++extra) {
    const Index s = rng.uniform_int(n);
    const Index t = rng.uniform_int(n);
    if (s != t) g.add_edge(std::min(s, t), std::max(s, t), rng.uniform(0.1, 2.0));
  }
  const auto ids = maximum_spanning_forest(g);
  EXPECT_EQ(to_index(ids.size()), n - 1);
  EXPECT_TRUE(is_connected(subgraph_from_edges(g, ids)));
}

class MstBruteForceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MstBruteForceSweep, KruskalMatchesExhaustiveOptimum) {
  Rng rng(GetParam());
  const Index n = 6;
  Graph g(n);
  // Random connected graph: a random tree plus a few extra edges.
  for (Index i = 1; i < n; ++i)
    g.add_edge(rng.uniform_int(i), i, rng.uniform(0.1, 5.0));
  for (int extra = 0; extra < 4; ++extra) {
    const Index s = rng.uniform_int(n);
    const Index t = rng.uniform_int(n);
    if (s != t) g.add_edge(std::min(s, t), std::max(s, t), rng.uniform(0.1, 5.0));
  }
  const auto ids = maximum_spanning_forest(g);
  EXPECT_EQ(to_index(ids.size()), n - 1);
  EXPECT_NEAR(weight_of(g, ids), brute_force_max_tree_weight(g), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstBruteForceSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull,
                                           7ull, 8ull));

}  // namespace
}  // namespace sgl::graph
