// Unit tests for graph generators, including the paper-surrogate meshes.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace sgl::graph {
namespace {

TEST(Generators, PathCycleStarComplete) {
  EXPECT_EQ(make_path(5).num_edges(), 4);
  EXPECT_EQ(make_cycle(5).num_edges(), 5);
  EXPECT_EQ(make_star(5).num_edges(), 4);
  EXPECT_EQ(make_complete(5).num_edges(), 10);
  EXPECT_THROW(make_cycle(2), ContractViolation);
}

TEST(Generators, Grid2dOpenBoundary) {
  const MeshGraph m = make_grid2d(4, 3);
  EXPECT_EQ(m.graph.num_nodes(), 12);
  // Horizontal: 3 per row × 3 rows; vertical: 2 per column × 4 columns.
  EXPECT_EQ(m.graph.num_edges(), 9 + 8);
  EXPECT_EQ(m.coords.size(), 12u);
  EXPECT_TRUE(is_connected(m.graph));
}

TEST(Generators, Grid2dTorusMatchesPaper2dMesh) {
  // The paper's "2D mesh": |V| = 10,000, |E| = 20,000.
  const MeshGraph m = make_grid2d(100, 100, /*periodic=*/true);
  EXPECT_EQ(m.graph.num_nodes(), 10000);
  EXPECT_EQ(m.graph.num_edges(), 20000);
  EXPECT_TRUE(is_connected(m.graph));
}

TEST(Generators, Grid3dEdgeCount) {
  const Graph g = make_grid3d(3, 4, 5);
  EXPECT_EQ(g.num_nodes(), 60);
  // 2·4·5 + 3·3·5 + 3·4·4 = 40 + 45 + 48.
  EXPECT_EQ(g.num_edges(), 133);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(3);
  EXPECT_EQ(make_erdos_renyi(10, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(make_erdos_renyi(10, 1.0, rng).num_edges(), 45);
  EXPECT_THROW(make_erdos_renyi(10, 1.5, rng), ContractViolation);
}

TEST(Generators, RandomGeometricRadiusControlsDensity) {
  Rng rng1(4), rng2(4);
  const MeshGraph sparse = make_random_geometric(100, 0.05, rng1);
  const MeshGraph dense = make_random_geometric(100, 0.3, rng2);
  EXPECT_LT(sparse.graph.num_edges(), dense.graph.num_edges());
}

TEST(Generators, TriangulatedMeshDensityNearThree) {
  TriMeshOptions opt;
  opt.nx = 40;
  opt.ny = 40;
  const MeshGraph m = make_triangulated_mesh(opt);
  EXPECT_EQ(m.graph.num_nodes(), 1600);
  EXPECT_NEAR(m.graph.density(), 3.0, 0.15);
  EXPECT_TRUE(is_connected(m.graph));
}

TEST(Generators, TriangulatedMeshHoleRemovesNodes) {
  TriMeshOptions opt;
  opt.nx = 30;
  opt.ny = 30;
  opt.holes = {{15.0, 15.0, 5.0, 5.0}};
  const MeshGraph m = make_triangulated_mesh(opt);
  EXPECT_LT(m.graph.num_nodes(), 900);
  EXPECT_GT(m.graph.num_nodes(), 700);
  EXPECT_TRUE(is_connected(m.graph));
  EXPECT_EQ(m.coords.size(), static_cast<std::size_t>(m.graph.num_nodes()));
}

TEST(Generators, WeightJitterKeepsWeightsInRange) {
  TriMeshOptions opt;
  opt.nx = 10;
  opt.ny = 10;
  opt.weight_jitter = 2.0;
  const MeshGraph m = make_triangulated_mesh(opt);
  for (const Edge& e : m.graph.edges()) {
    EXPECT_GE(e.weight, 0.5 - 1e-12);
    EXPECT_LE(e.weight, 2.0 + 1e-12);
  }
}

TEST(Generators, AirfoilSurrogateMatchesPaperScale) {
  // Paper airfoil: |V| = 4,253, |E| = 12,289, density 2.89.
  const MeshGraph m = make_airfoil_surrogate();
  EXPECT_NEAR(m.graph.num_nodes(), 4253, 450);
  EXPECT_NEAR(m.graph.density(), 2.89, 0.15);
  EXPECT_TRUE(is_connected(m.graph));
}

TEST(Generators, CrackSurrogateMatchesPaperScale) {
  // Paper crack: |V| = 10,240, |E| = 30,380, density 2.97.
  const MeshGraph m = make_crack_surrogate();
  EXPECT_NEAR(m.graph.num_nodes(), 10240, 600);
  EXPECT_NEAR(m.graph.density(), 2.97, 0.15);
  EXPECT_TRUE(is_connected(m.graph));
}

TEST(Generators, Fe4elt2SurrogateMatchesPaperScale) {
  // Paper fe_4elt2: |V| = 11,143, |E| = 32,818, density 2.945.
  const MeshGraph m = make_fe4elt2_surrogate();
  EXPECT_NEAR(m.graph.num_nodes(), 11143, 700);
  EXPECT_NEAR(m.graph.density(), 2.945, 0.15);
  EXPECT_TRUE(is_connected(m.graph));
}

TEST(Generators, CircuitGridHitsExactEdgeTarget) {
  const MeshGraph m = make_circuit_grid(30, 30, 1500, 0.5, 5.0, 9);
  EXPECT_EQ(m.graph.num_nodes(), 900);
  EXPECT_EQ(m.graph.num_edges(), 1500);
  EXPECT_TRUE(is_connected(m.graph));
  for (const Edge& e : m.graph.edges()) {
    EXPECT_GE(e.weight, 0.5 - 1e-12);
    EXPECT_LE(e.weight, 5.0 + 1e-12);
  }
}

TEST(Generators, CircuitGridRejectsSubTreeTarget) {
  EXPECT_THROW(make_circuit_grid(10, 10, 50, 0.5, 5.0, 1), ContractViolation);
}

TEST(Generators, G2SurrogateMatchesPaperScale) {
  // Paper G2_circuit: |V| = 150,102, |E| = 288,286.
  const MeshGraph m = make_g2_circuit_surrogate();
  EXPECT_NEAR(m.graph.num_nodes(), 150102, 200);
  EXPECT_EQ(m.graph.num_edges(), 288286);
  EXPECT_TRUE(is_connected(m.graph));
}

class GeneratorConnectivitySweep
    : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(GeneratorConnectivitySweep, GridsAlwaysConnected) {
  const auto [nx, ny] = GetParam();
  EXPECT_TRUE(is_connected(make_grid2d(nx, ny).graph));
  if (nx >= 3 && ny >= 3) {
    EXPECT_TRUE(is_connected(make_grid2d(nx, ny, true).graph));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorConnectivitySweep,
    ::testing::Values(std::pair<Index, Index>{1, 1},
                      std::pair<Index, Index>{2, 2},
                      std::pair<Index, Index>{3, 3},
                      std::pair<Index, Index>{5, 17},
                      std::pair<Index, Index>{16, 16}));

}  // namespace
}  // namespace sgl::graph
