// Unit tests for connectivity queries.
#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace sgl::graph {
namespace {

TEST(Components, SingleComponentPath) {
  const Graph g = make_path(5);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 1);
  for (const Index l : c.label) EXPECT_EQ(l, 0);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, TwoIslands) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3);  // {0,1}, {2}, {3,4}
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, EmptyGraphIsNotConnected) {
  EXPECT_FALSE(is_connected(Graph(0)));
}

TEST(Components, SingleNodeIsConnected) {
  EXPECT_TRUE(is_connected(Graph(1)));
}

TEST(Components, BfsDistancesOnPath) {
  const Graph g = make_path(6);
  const auto d = bfs_distances(g, 2);
  EXPECT_EQ(d[2], 0);
  EXPECT_EQ(d[0], 2);
  EXPECT_EQ(d[5], 3);
}

TEST(Components, BfsUnreachableIsMarked) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], kInvalidIndex);
  EXPECT_EQ(d[3], kInvalidIndex);
}

TEST(Components, BfsOnGridHasManhattanRadius) {
  const MeshGraph mesh = make_grid2d(7, 7);
  const auto d = bfs_distances(mesh.graph, 0);  // corner
  // Farthest point of a 7×7 grid from a corner is the opposite corner at
  // Manhattan distance 12.
  Index max_d = 0;
  for (const Index v : d) max_d = std::max(max_d, v);
  EXPECT_EQ(max_d, 12);
}

TEST(Components, PseudoPeripheralFindsPathEndpoint) {
  const Graph g = make_path(9);
  const AdjacencyList adj = g.adjacency_list();
  const Index p = pseudo_peripheral_node(adj, 4);
  EXPECT_TRUE(p == 0 || p == 8);
}

}  // namespace
}  // namespace sgl::graph
