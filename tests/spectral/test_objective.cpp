// Unit tests for the graphical-Lasso objective (paper eq. 2, β = 0).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "eig/dense_eig.hpp"
#include "graph/generators.hpp"
#include "spectral/objective.hpp"

namespace sgl::spectral {
namespace {

la::DenseMatrix random_measurements(Index n, Index m, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix x(n, m);
  for (Index j = 0; j < m; ++j)
    for (Index i = 0; i < n; ++i) x(i, j) = rng.normal();
  return x;
}

TEST(Objective, QuadraticTraceMatchesMatrixForm) {
  const graph::Graph g = graph::make_grid2d(5, 4).graph;
  const la::DenseMatrix x = random_measurements(20, 7, 1);
  // Tr(XᵀLX) computed column by column through the CSR Laplacian.
  const la::CsrMatrix lap = g.laplacian();
  Real expected = 0.0;
  for (Index j = 0; j < 7; ++j)
    expected += lap.quadratic_form(x.col_vector(j));
  EXPECT_NEAR(laplacian_quadratic_trace(g, x), expected, 1e-9);
}

TEST(Objective, MatchesDenseComputationOnSmallGraph) {
  // Full-eigenvalue objective against a dense log det, K = n − 1.
  const Index n = 14;
  const graph::Graph g = graph::make_grid2d(7, 2).graph;
  const la::DenseMatrix x = random_measurements(n, 5, 2);
  const Real sigma2 = 100.0;

  ObjectiveOptions options;
  options.num_eigenvalues = n - 1;
  options.embedding.sigma2 = sigma2;
  const ObjectiveBreakdown got = graphical_lasso_objective(g, x, options);

  // Dense reference: log det(L + I/σ²) via eigenvalues.
  const la::CsrMatrix lap = g.laplacian();
  la::DenseMatrix dense(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) dense(i, j) = lap.at(i, j);
  const eig::DenseEigResult eigs = eig::dense_symmetric_eig(dense);
  Real log_det = 0.0;
  for (const Real lambda : eigs.eigenvalues)
    log_det += std::log(lambda + 1.0 / sigma2);

  Real trace = laplacian_quadratic_trace(g, x);
  trace += x.frobenius_norm_squared() / sigma2;
  trace /= 5.0;

  EXPECT_NEAR(got.log_det, log_det, 1e-6);
  EXPECT_NEAR(got.trace_term, trace, 1e-9);
  EXPECT_NEAR(got.value(), log_det - trace, 1e-6);
}

TEST(Objective, UniformScaleMaximizerMatchesClosedForm) {
  // Restricted to uniform rescalings Θ(c) = cL + I/σ² with σ² → ∞ and K
  // counted eigenvalues, F(c) ≈ K·log c − c·T + const with
  // T = (1/M)·Tr(XᵀLX), so the maximizer is c* = K/T. Check that F(c*)
  // beats gross misscalings on both sides.
  const graph::Graph truth = graph::make_grid2d(8, 8).graph;
  Rng rng(3);
  const solver::LaplacianPinvSolver pinv(truth);
  la::DenseMatrix x(truth.num_nodes(), 20);
  for (Index i = 0; i < 20; ++i) {
    la::Vector y(static_cast<std::size_t>(truth.num_nodes()));
    for (auto& v : y) v = rng.normal();
    la::center(y);
    la::normalize(y);
    x.set_col(i, pinv.apply(y));
  }

  ObjectiveOptions options;
  options.num_eigenvalues = 40;
  const Real k = 40.0;
  const Real t = laplacian_quadratic_trace(truth, x) / 20.0;
  const Real c_star = k / t;

  const auto f_at = [&](Real c) {
    graph::Graph scaled = truth;
    scaled.scale_weights(c);
    return graphical_lasso_objective(scaled, x, options).value();
  };
  const Real f_opt = f_at(c_star);
  EXPECT_GT(f_opt, f_at(0.2 * c_star));
  EXPECT_GT(f_opt, f_at(5.0 * c_star));
  // And the local shape is concave around c*.
  EXPECT_GT(f_opt, f_at(0.7 * c_star));
  EXPECT_GT(f_opt, f_at(1.5 * c_star));
}

TEST(Objective, OptimalScaleBeatsNeighborScales) {
  const graph::Graph g = graph::make_grid2d(7, 7).graph;
  Rng rng(9);
  la::DenseMatrix x(49, 10);
  for (Index j = 0; j < 10; ++j)
    for (Index i = 0; i < 49; ++i) x(i, j) = rng.normal();
  ObjectiveOptions options;
  options.num_eigenvalues = 20;
  const ScaledObjective best = optimal_scale_objective(g, x, options);
  EXPECT_GT(best.scale, 0.0);
  for (const Real factor : {0.5, 2.0}) {
    graph::Graph scaled = g;
    scaled.scale_weights(factor * best.scale);
    const Real f = graphical_lasso_objective(scaled, x, options).value();
    EXPECT_GE(best.objective.value(), f - 1e-6);
  }
}

TEST(Objective, OptimalScaleIsKOverTrace) {
  const graph::Graph g = graph::make_path(12);
  Rng rng(10);
  la::DenseMatrix x(12, 4);
  for (Index j = 0; j < 4; ++j)
    for (Index i = 0; i < 12; ++i) x(i, j) = rng.normal();
  ObjectiveOptions options;
  options.num_eigenvalues = 8;
  const ScaledObjective best = optimal_scale_objective(g, x, options);
  const Real t = laplacian_quadratic_trace(g, x) / 4.0;
  EXPECT_NEAR(best.scale, 8.0 / t, 1e-9 * best.scale);
}

TEST(Objective, KCapsAtGraphSize) {
  const graph::Graph g = graph::make_path(6);
  const la::DenseMatrix x = random_measurements(6, 3, 4);
  ObjectiveOptions options;
  options.num_eigenvalues = 50;  // > n − 1, must be capped internally
  EXPECT_NO_THROW((void)graphical_lasso_objective(g, x, options));
}

TEST(Objective, Contracts) {
  const graph::Graph g = graph::make_path(6);
  const la::DenseMatrix empty(6, 0);
  EXPECT_THROW((void)graphical_lasso_objective(g, empty), ContractViolation);
  const la::DenseMatrix wrong_rows(5, 2);
  EXPECT_THROW((void)laplacian_quadratic_trace(g, wrong_rows),
               ContractViolation);
}

}  // namespace
}  // namespace sgl::spectral
