// Unit tests for spectral sparsification by effective resistances.
#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "spectral/metrics.hpp"
#include "spectral/sparsify.hpp"

namespace sgl::spectral {
namespace {

TEST(Sparsify, ReducesEdgeCountOnDenseGraph) {
  const graph::Graph g = graph::make_complete(40);  // 780 edges
  SparsifyOptions options;
  options.epsilon = 0.5;
  const SparsifyResult r = spectral_sparsify(g, options);
  EXPECT_LT(r.sparsifier.num_edges(), g.num_edges());
  EXPECT_GT(r.sparsifier.num_edges(), 0);
  EXPECT_EQ(r.distinct_edges, r.sparsifier.num_edges());
}

TEST(Sparsify, PreservesTotalWeightInExpectation) {
  // The estimator is unbiased: Σ w'_e ≈ Σ w_e across seeds.
  const graph::Graph g = graph::make_complete(25);
  Real total = 0.0;
  const int runs = 8;
  for (int seed = 0; seed < runs; ++seed) {
    SparsifyOptions options;
    options.seed = static_cast<std::uint64_t>(seed);
    options.num_samples = 2000;
    total += spectral_sparsify(g, options).sparsifier.total_weight();
  }
  EXPECT_NEAR(total / runs, g.total_weight(), 0.15 * g.total_weight());
}

TEST(Sparsify, SparsifierSpectrumTracksOriginal) {
  const graph::Graph g = graph::make_complete(60);
  SparsifyOptions options;
  options.epsilon = 0.3;
  const SparsifyResult r = spectral_sparsify(g, options);
  ASSERT_TRUE(graph::is_connected(r.sparsifier));
  const SpectrumComparison cmp = compare_spectra(g, r.sparsifier, 10);
  EXPECT_LT(cmp.mean_rel_error, 0.35);
}

TEST(Sparsify, KeepsEndpointsWithinGraph) {
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  const SparsifyResult r = spectral_sparsify(g);
  EXPECT_EQ(r.sparsifier.num_nodes(), g.num_nodes());
  for (const graph::Edge& e : r.sparsifier.edges()) {
    EXPECT_GE(e.s, 0);
    EXPECT_LT(e.t, g.num_nodes());
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(Sparsify, DeterministicPerSeed) {
  const graph::Graph g = graph::make_complete(20);
  SparsifyOptions options;
  options.seed = 9;
  const SparsifyResult a = spectral_sparsify(g, options);
  const SparsifyResult b = spectral_sparsify(g, options);
  ASSERT_EQ(a.sparsifier.num_edges(), b.sparsifier.num_edges());
  for (Index e = 0; e < a.sparsifier.num_edges(); ++e)
    EXPECT_DOUBLE_EQ(a.sparsifier.edge(e).weight, b.sparsifier.edge(e).weight);
}

TEST(Sparsify, ExplicitSampleCountHonored) {
  const graph::Graph g = graph::make_complete(15);
  SparsifyOptions options;
  options.num_samples = 123;
  const SparsifyResult r = spectral_sparsify(g, options);
  EXPECT_EQ(r.samples_drawn, 123);
  EXPECT_LE(r.distinct_edges, 123);
}

TEST(Sparsify, Contracts) {
  SparsifyOptions bad;
  bad.epsilon = 0.0;
  EXPECT_THROW(spectral_sparsify(graph::make_complete(5), bad),
               ContractViolation);
  EXPECT_THROW(spectral_sparsify(graph::Graph(3)), ContractViolation);
}

}  // namespace
}  // namespace sgl::spectral
