// Unit tests for spectral embedding (paper eq. 12 and inequality 20).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spectral/embedding.hpp"

namespace sgl::spectral {
namespace {

TEST(Embedding, DimensionsFollowR) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  EmbeddingOptions options;
  options.r = 5;
  const Embedding e = compute_embedding(g, options);
  EXPECT_EQ(e.u.rows(), 36);
  EXPECT_EQ(e.u.cols(), 4);  // u2..u5
  EXPECT_EQ(e.eigenvalues.size(), 4u);
}

TEST(Embedding, RIsCappedByGraphSize) {
  const graph::Graph g = graph::make_path(4);
  EmbeddingOptions options;
  options.r = 50;
  const Embedding e = compute_embedding(g, options);
  EXPECT_EQ(e.u.cols(), 3);  // at most n−1 nontrivial pairs
}

TEST(Embedding, FullEmbeddingDistanceEqualsEffectiveResistance) {
  // With r = N and σ² → ∞, ‖Urᵀe_st‖² = Reff(s,t) (paper eq. 19).
  const Index n = 12;
  const graph::Graph g = graph::make_cycle(n);
  EmbeddingOptions options;
  options.r = n;           // full spectrum
  options.sigma2 = 1e14;   // effectively infinite
  options.lanczos.max_subspace = n - 1;
  const Embedding e = compute_embedding(g, options);

  const solver::LaplacianPinvSolver pinv(g);
  for (const auto& [s, t] : std::vector<std::pair<Index, Index>>{
           {0, 1}, {0, 6}, {2, 9}}) {
    EXPECT_NEAR(embedding_distance_squared(e.u, s, t),
                pinv.effective_resistance(s, t), 1e-6);
  }
}

TEST(Embedding, TruncationUnderestimatesResistance) {
  // Paper inequality (20): with r ≪ N, z_emb < Reff for every pair.
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  EmbeddingOptions options;
  options.r = 5;
  options.sigma2 = 1e14;
  const Embedding e = compute_embedding(g, options);
  const solver::LaplacianPinvSolver pinv(g);
  for (Index t = 1; t < 64; t += 9) {
    EXPECT_LE(embedding_distance_squared(e.u, 0, t),
              pinv.effective_resistance(0, t) + 1e-9);
  }
}

TEST(Embedding, MoreEigenvectorsTightenTheApproximation) {
  const graph::Graph g = graph::make_grid2d(7, 7).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const Real truth = pinv.effective_resistance(0, 48);

  EmbeddingOptions small;
  small.r = 3;
  small.sigma2 = 1e14;
  EmbeddingOptions large;
  large.r = 20;
  large.sigma2 = 1e14;
  const Real z_small =
      embedding_distance_squared(compute_embedding(g, small).u, 0, 48);
  const Real z_large =
      embedding_distance_squared(compute_embedding(g, large).u, 0, 48);
  EXPECT_LE(z_small, z_large + 1e-12);
  EXPECT_LE(z_large, truth + 1e-9);
}

TEST(Embedding, SigmaRegularizesScale) {
  // Finite σ² shrinks every embedding coordinate relative to σ² → ∞.
  const graph::Graph g = graph::make_grid2d(5, 5).graph;
  EmbeddingOptions finite;
  finite.r = 4;
  finite.sigma2 = 1.0;
  EmbeddingOptions infinite;
  infinite.r = 4;
  infinite.sigma2 = 1e14;
  const Embedding ef = compute_embedding(g, finite);
  const Embedding ei = compute_embedding(g, infinite);
  EXPECT_LT(embedding_distance_squared(ef.u, 0, 24),
            embedding_distance_squared(ei.u, 0, 24));
}

TEST(Embedding, EigenvaluesAscending) {
  const graph::Graph g = graph::make_grid2d(6, 4).graph;
  EmbeddingOptions options;
  options.r = 6;
  const Embedding e = compute_embedding(g, options);
  for (std::size_t i = 1; i < e.eigenvalues.size(); ++i)
    EXPECT_LE(e.eigenvalues[i - 1], e.eigenvalues[i] + 1e-12);
}

TEST(Embedding, ReportsEigensolverConvergence) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  EmbeddingOptions options;
  options.r = 4;
  const Embedding ok = compute_embedding(g, options);
  EXPECT_TRUE(ok.eig_converged);
  EXPECT_GT(ok.lanczos_steps, 0);

  // Starve the eigensolver: a basis capped at dims vectors cannot reach
  // the residual tolerance on a mesh, and the flag must say so while the
  // embedding is still built from the best available pairs.
  EmbeddingOptions starved = options;
  starved.lanczos.max_subspace = options.r - 1;
  const Embedding bad = compute_embedding(g, starved);
  EXPECT_FALSE(bad.eig_converged);
  EXPECT_EQ(bad.u.cols(), options.r - 1);
  EXPECT_EQ(bad.u.rows(), g.num_nodes());
}

TEST(Embedding, Contracts) {
  const graph::Graph g = graph::make_path(5);
  EmbeddingOptions options;
  options.r = 1;
  EXPECT_THROW(compute_embedding(g, options), ContractViolation);
  options.r = 3;
  options.sigma2 = 0.0;
  EXPECT_THROW(compute_embedding(g, options), ContractViolation);
}

}  // namespace
}  // namespace sgl::spectral
