// Unit tests for spectral comparison metrics.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spectral/metrics.hpp"

namespace sgl::spectral {
namespace {

TEST(Metrics, PearsonPerfectPositive) {
  const la::Vector a{1.0, 2.0, 3.0, 4.0};
  const la::Vector b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
}

TEST(Metrics, PearsonPerfectNegative) {
  const la::Vector a{1.0, 2.0, 3.0};
  const la::Vector b{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson_correlation(a, b), -1.0, 1e-12);
}

TEST(Metrics, PearsonUncorrelatedNearZero) {
  const la::Vector a{1.0, -1.0, 1.0, -1.0};
  const la::Vector b{1.0, 1.0, -1.0, -1.0};
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 1e-12);
}

TEST(Metrics, PearsonShiftAndScaleInvariant) {
  const la::Vector a{0.3, 1.7, 2.9, 5.1, 7.7};
  la::Vector b = a;
  for (auto& v : b) v = 3.0 * v - 11.0;
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
}

TEST(Metrics, PearsonConstantInputIsDefined) {
  const la::Vector a{1.0, 1.0, 1.0};
  const la::Vector b{1.0, 2.0, 3.0};
  EXPECT_NO_THROW((void)pearson_correlation(a, b));
}

TEST(Metrics, PearsonContracts) {
  EXPECT_THROW((void)pearson_correlation({1.0}, {1.0}), ContractViolation);
  EXPECT_THROW((void)pearson_correlation({1.0, 2.0}, {1.0}),
               ContractViolation);
}

TEST(Metrics, MeanRelativeError) {
  const la::Vector ref{1.0, 2.0, 4.0};
  const la::Vector approx{1.1, 1.8, 4.0};
  EXPECT_NEAR(mean_relative_error(ref, approx), (0.1 + 0.1 + 0.0) / 3.0, 1e-12);
}

TEST(Metrics, CompareSpectraIdenticalGraphs) {
  const graph::Graph g = graph::make_grid2d(7, 7).graph;
  const SpectrumComparison cmp = compare_spectra(g, g, 10);
  EXPECT_EQ(cmp.reference.size(), 10u);
  EXPECT_NEAR(cmp.correlation, 1.0, 1e-9);
  EXPECT_LT(cmp.mean_rel_error, 1e-7);
}

TEST(Metrics, CompareSpectraSizesSubspacePerGraph) {
  // Reduced-network comparison: the graphs differ in node count, and the
  // larger one's eigensolver must not inherit a subspace cap clamped by
  // the smaller one (a 14-node learned graph would otherwise cap the
  // 144-node reference's basis at 13 vectors — one unconverged
  // Rayleigh–Ritz pass). Cross-check the reference eigenvalues against a
  // direct solve with a healthy cap.
  const graph::Graph reference = graph::make_grid2d(12, 12).graph;
  const graph::Graph learned = graph::make_path(14);
  const SpectrumComparison cmp = compare_spectra(reference, learned, 13);
  ASSERT_EQ(cmp.reference.size(), 13u);

  const solver::LaplacianPinvSolver pinv(reference);
  const auto direct = eig::smallest_laplacian_eigenpairs(pinv, 13);
  ASSERT_TRUE(direct.converged);
  for (std::size_t i = 0; i < 13; ++i)
    EXPECT_NEAR(cmp.reference[i], direct.eigenvalues[i],
                1e-8 * direct.eigenvalues[i]);
}

TEST(Metrics, CompareSpectraDetectsScaleError) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  graph::Graph scaled = g;
  scaled.scale_weights(2.0);
  const SpectrumComparison cmp = compare_spectra(g, scaled, 8);
  // Perfectly correlated (eigenvalues scale linearly) but biased.
  EXPECT_NEAR(cmp.correlation, 1.0, 1e-9);
  EXPECT_NEAR(cmp.mean_rel_error, 1.0, 1e-6);  // 2λ vs λ → 100% error
}

TEST(Metrics, SampleNodePairsValidAndDeterministic) {
  const auto p1 = sample_node_pairs(50, 100, 9);
  const auto p2 = sample_node_pairs(50, 100, 9);
  EXPECT_EQ(p1.size(), 100u);
  EXPECT_EQ(p1, p2);
  for (const auto& [s, t] : p1) {
    EXPECT_NE(s, t);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 50);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 50);
  }
}

TEST(Metrics, CompareEffectiveResistancesIdenticalGraphs) {
  const graph::Graph g = graph::make_grid2d(6, 5).graph;
  const auto pairs = sample_node_pairs(g.num_nodes(), 40, 3);
  const ResistanceComparison cmp =
      compare_effective_resistances(g, g, pairs);
  EXPECT_NEAR(cmp.correlation, 1.0, 1e-9);
  for (std::size_t i = 0; i < cmp.reference.size(); ++i)
    EXPECT_NEAR(cmp.reference[i], cmp.approx[i], 1e-9);
}

TEST(Metrics, HopStratifiedPairsValid) {
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  const auto pairs = sample_node_pairs_by_hops(g, 60, 5);
  EXPECT_EQ(pairs.size(), 60u);
  for (const auto& [s, t] : pairs) {
    EXPECT_NE(s, t);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 64);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 64);
  }
  // Deterministic per seed.
  EXPECT_EQ(pairs, sample_node_pairs_by_hops(g, 60, 5));
}

TEST(Metrics, HopStratifiedPairsSpanScales) {
  // On a long path the sampler must produce both short and long pairs.
  const graph::Graph g = graph::make_path(200);
  const auto pairs = sample_node_pairs_by_hops(g, 100, 7, 64);
  Index min_gap = 1000, max_gap = 0;
  for (const auto& [s, t] : pairs) {
    min_gap = std::min(min_gap, std::abs(s - t));
    max_gap = std::max(max_gap, std::abs(s - t));
  }
  EXPECT_LE(min_gap, 2);
  EXPECT_GE(max_gap, 8);
}

TEST(Metrics, CompareEffectiveResistancesNodeCountMismatchThrows) {
  const graph::Graph a = graph::make_path(5);
  const graph::Graph b = graph::make_path(6);
  EXPECT_THROW(compare_effective_resistances(a, b, {{0, 1}}),
               ContractViolation);
}

}  // namespace
}  // namespace sgl::spectral
