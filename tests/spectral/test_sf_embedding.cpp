// Unit tests for the solver-free (SF-SGL) embedding engine and the
// EmbeddingEngine seam: name table round-trips, the kAuto policy, Ritz
// quality against the exact engine, and the determinism contract
// (fixed-seed reproducibility, thread-count bit-identity).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spectral/embedding.hpp"
#include "spectral/sf_embedding.hpp"

namespace sgl::spectral {
namespace {

TEST(EmbeddingEngineNames, RoundTrip) {
  for (const EmbeddingEngine e :
       {EmbeddingEngine::kExact, EmbeddingEngine::kSolverFree,
        EmbeddingEngine::kAuto}) {
    const auto parsed = parse_embedding_engine(embedding_engine_name(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, e);
  }
}

TEST(EmbeddingEngineNames, UnknownNameIsRejected) {
  EXPECT_FALSE(parse_embedding_engine("lanczos").has_value());
  EXPECT_FALSE(parse_embedding_engine("").has_value());
  EXPECT_FALSE(parse_embedding_engine("Exact").has_value());  // case-sensitive
}

TEST(EmbeddingEngineNames, ListMentionsEveryEngine) {
  const std::string list = embedding_engine_name_list();
  EXPECT_NE(list.find("exact"), std::string::npos);
  EXPECT_NE(list.find("solver-free"), std::string::npos);
  EXPECT_NE(list.find("auto"), std::string::npos);
}

TEST(EmbeddingEngineSeam, ExplicitChoicesAreHonored) {
  EXPECT_EQ(resolve_embedding_engine(EmbeddingEngine::kExact, 1000000),
            EmbeddingEngine::kExact);
  EXPECT_EQ(resolve_embedding_engine(EmbeddingEngine::kSolverFree, 10),
            EmbeddingEngine::kSolverFree);
}

TEST(EmbeddingEngineSeam, AutoSwitchesAtThreshold) {
  EXPECT_EQ(resolve_embedding_engine(EmbeddingEngine::kAuto,
                                     kAutoSolverFreeThreshold - 1),
            EmbeddingEngine::kExact);
  EXPECT_EQ(
      resolve_embedding_engine(EmbeddingEngine::kAuto, kAutoSolverFreeThreshold),
      EmbeddingEngine::kSolverFree);
}

TEST(EmbeddingEngineSeam, DispatchReportsEngineUsed) {
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  EmbeddingOptions options;
  options.r = 4;

  options.engine = EmbeddingEngine::kExact;
  EXPECT_EQ(compute_embedding(g, options).engine_used,
            EmbeddingEngine::kExact);

  options.engine = EmbeddingEngine::kSolverFree;
  EXPECT_EQ(compute_embedding(g, options).engine_used,
            EmbeddingEngine::kSolverFree);

  // Small graph + kAuto resolves to the exact engine.
  options.engine = EmbeddingEngine::kAuto;
  EXPECT_EQ(compute_embedding(g, options).engine_used,
            EmbeddingEngine::kExact);
}

TEST(SfEmbedding, DimensionsFollowR) {
  const graph::Graph g = graph::make_grid2d(20, 20).graph;
  EmbeddingOptions options;
  options.r = 5;
  const Embedding e = compute_sf_embedding(g, options);
  EXPECT_EQ(e.u.rows(), 400);
  EXPECT_EQ(e.u.cols(), 4);  // u2..u5
  EXPECT_EQ(e.eigenvalues.size(), 4u);
  EXPECT_EQ(e.engine_used, EmbeddingEngine::kSolverFree);
  EXPECT_GT(e.hierarchy_levels, 0);
  EXPECT_GT(e.smoother_sweeps, 0);
  // The solver-free projection runs a fixed amount of work: there is no
  // iterative eigensolver that could fail to converge.
  EXPECT_TRUE(e.eig_converged);
  EXPECT_EQ(e.lanczos_steps, 0);
}

TEST(SfEmbedding, RIsCappedByGraphSize) {
  const graph::Graph g = graph::make_path(6);
  EmbeddingOptions options;
  options.r = 50;
  const Embedding e = compute_sf_embedding(g, options);
  EXPECT_EQ(e.u.cols(), 5);  // at most n−1 nontrivial pairs
  EXPECT_EQ(e.u.rows(), 6);
}

TEST(SfEmbedding, RitzValuesTrackExactEigenvalues) {
  // The probe measured ≤ 13% relative Ritz error on this grid with the
  // default smoothing budget; 50% leaves room for platform variation
  // while still catching a broken projection (errors would be O(1)).
  const graph::Graph g = graph::make_grid2d(20, 20).graph;
  EmbeddingOptions options;
  options.r = 5;
  options.engine = EmbeddingEngine::kExact;
  const Embedding exact = compute_embedding(g, options);
  const Embedding sf = compute_sf_embedding(g, options);
  ASSERT_EQ(sf.eigenvalues.size(), exact.eigenvalues.size());
  for (std::size_t i = 0; i < exact.eigenvalues.size(); ++i) {
    EXPECT_NEAR(sf.eigenvalues[i], exact.eigenvalues[i],
                0.5 * exact.eigenvalues[i])
        << "Ritz value " << i;
  }
}

TEST(SfEmbedding, EigenvaluesAscending) {
  const graph::Graph g = graph::make_grid2d(12, 9).graph;
  EmbeddingOptions options;
  options.r = 6;
  const Embedding e = compute_sf_embedding(g, options);
  for (std::size_t i = 1; i < e.eigenvalues.size(); ++i)
    EXPECT_LE(e.eigenvalues[i - 1], e.eigenvalues[i] + 1e-12);
}

TEST(SfEmbedding, FixedSeedIsBitwiseReproducible) {
  const graph::Graph g = graph::make_grid2d(15, 15).graph;
  EmbeddingOptions options;
  options.r = 5;
  const Embedding a = compute_sf_embedding(g, options);
  const Embedding b = compute_sf_embedding(g, options);
  EXPECT_EQ(a.u.data(), b.u.data());
  EXPECT_EQ(a.eigenvalues, b.eigenvalues);
}

TEST(SfEmbedding, SeedChangesTestVectors) {
  const graph::Graph g = graph::make_grid2d(15, 15).graph;
  EmbeddingOptions a;
  a.r = 5;
  EmbeddingOptions b = a;
  b.sf.seed = a.sf.seed + 1;
  EXPECT_NE(compute_sf_embedding(g, a).u.data(),
            compute_sf_embedding(g, b).u.data());
}

TEST(SfEmbedding, BitIdenticalAcrossThreadCounts) {
  // The determinism contract of the engine seam: at a fixed seed the
  // solver-free embedding is the same bit pattern for every thread count.
  const graph::Graph g = graph::make_grid2d(20, 20).graph;
  EmbeddingOptions base;
  base.r = 5;
  base.sf.num_threads = 1;
  const Embedding serial = compute_sf_embedding(g, base);
  for (const Index threads : {2, 4, 8}) {
    EmbeddingOptions options = base;
    options.sf.num_threads = threads;
    const Embedding e = compute_sf_embedding(g, options);
    EXPECT_EQ(serial.u.data(), e.u.data()) << threads << " threads";
    EXPECT_EQ(serial.eigenvalues, e.eigenvalues) << threads << " threads";
  }
}

TEST(SfEmbedding, SmootherBudgetIsConfigurable) {
  const graph::Graph g = graph::make_grid2d(14, 14).graph;
  EmbeddingOptions options;
  options.r = 4;
  options.sf.smoother_sweeps = 3;
  const Embedding light = compute_sf_embedding(g, options);
  options.sf.smoother_sweeps = 12;
  const Embedding heavy = compute_sf_embedding(g, options);
  EXPECT_GT(heavy.smoother_sweeps, light.smoother_sweeps);
  EXPECT_EQ(heavy.hierarchy_levels, light.hierarchy_levels);
}

TEST(SfEmbedding, Contracts) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  {
    EmbeddingOptions options;
    options.r = 1;
    EXPECT_THROW((void)compute_sf_embedding(g, options), ContractViolation);
  }
  {
    EmbeddingOptions options;
    options.sigma2 = 0.0;
    EXPECT_THROW((void)compute_sf_embedding(g, options), ContractViolation);
  }
  {
    EmbeddingOptions options;
    options.sf.smoother_sweeps = 0;
    EXPECT_THROW((void)compute_sf_embedding(g, options), ContractViolation);
  }
  {
    EmbeddingOptions options;
    options.sf.jacobi_weight = 1.5;
    EXPECT_THROW((void)compute_sf_embedding(g, options), ContractViolation);
  }
  {
    EmbeddingOptions options;
    options.sf.coarsest_size = 1;
    EXPECT_THROW((void)compute_sf_embedding(g, options), ContractViolation);
  }
}

}  // namespace
}  // namespace sgl::spectral
