// Unit tests for k-means, spectral clustering, and spectral drawing.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "spectral/clustering.hpp"

namespace sgl::spectral {
namespace {

TEST(KMeans, SeparatedBlobsRecovered) {
  Rng rng(1);
  la::DenseMatrix points(60, 2);
  for (Index i = 0; i < 30; ++i) {
    points(i, 0) = rng.normal() * 0.05;
    points(i, 1) = rng.normal() * 0.05;
  }
  for (Index i = 30; i < 60; ++i) {
    points(i, 0) = 10.0 + rng.normal() * 0.05;
    points(i, 1) = 10.0 + rng.normal() * 0.05;
  }
  const auto labels = kmeans(points, 2);
  ASSERT_EQ(labels.size(), 60u);
  // All of blob 1 shares one label, all of blob 2 the other.
  for (Index i = 1; i < 30; ++i) EXPECT_EQ(labels[static_cast<std::size_t>(i)], labels[0]);
  for (Index i = 31; i < 60; ++i) EXPECT_EQ(labels[static_cast<std::size_t>(i)], labels[30]);
  EXPECT_NE(labels[0], labels[30]);
}

TEST(KMeans, KEqualsNAssignsDistinctLabels) {
  la::DenseMatrix points(4, 1);
  for (Index i = 0; i < 4; ++i) points(i, 0) = static_cast<Real>(i * 10);
  const auto labels = kmeans(points, 4);
  const std::set<Index> unique(labels.begin(), labels.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(KMeans, DeterministicPerSeed) {
  Rng rng(2);
  la::DenseMatrix points(50, 3);
  for (Index j = 0; j < 3; ++j)
    for (Index i = 0; i < 50; ++i) points(i, j) = rng.normal();
  KMeansOptions options;
  options.seed = 11;
  EXPECT_EQ(kmeans(points, 5, options), kmeans(points, 5, options));
}

TEST(KMeans, Contracts) {
  const la::DenseMatrix points(5, 2);
  EXPECT_THROW(kmeans(points, 0), ContractViolation);
  EXPECT_THROW(kmeans(points, 6), ContractViolation);
}

TEST(SpectralClustering, TwoCliquesWithBridge) {
  // Two K6 cliques joined by one edge: the Fiedler vector separates them.
  graph::Graph g(12);
  for (Index i = 0; i < 6; ++i)
    for (Index j = i + 1; j < 6; ++j) g.add_edge(i, j, 1.0);
  for (Index i = 6; i < 12; ++i)
    for (Index j = i + 1; j < 12; ++j) g.add_edge(i, j, 1.0);
  g.add_edge(0, 6, 0.1);

  EmbeddingOptions embedding;
  embedding.r = 3;
  const auto labels = spectral_clusters(g, 2, embedding);
  for (Index i = 1; i < 6; ++i) EXPECT_EQ(labels[static_cast<std::size_t>(i)], labels[0]);
  for (Index i = 7; i < 12; ++i) EXPECT_EQ(labels[static_cast<std::size_t>(i)], labels[6]);
  EXPECT_NE(labels[0], labels[6]);
}

TEST(SpectralLayout, GridLayoutSeparatesEnds) {
  // On a path, the Fiedler coordinate orders nodes monotonically, so the
  // two endpoints land at extreme x positions.
  const graph::Graph g = graph::make_path(20);
  const auto coords = spectral_layout(g);
  ASSERT_EQ(coords.size(), 20u);
  Real min_x = coords[0][0];
  Real max_x = coords[0][0];
  for (const auto& c : coords) {
    min_x = std::min(min_x, c[0]);
    max_x = std::max(max_x, c[0]);
  }
  EXPECT_TRUE(coords[0][0] == min_x || coords[0][0] == max_x);
  EXPECT_TRUE(coords[19][0] == min_x || coords[19][0] == max_x);
}

TEST(SpectralLayout, ProducesFiniteCoordinates) {
  const graph::Graph g = graph::make_grid2d(9, 9).graph;
  const auto coords = spectral_layout(g);
  for (const auto& c : coords) {
    EXPECT_TRUE(std::isfinite(c[0]));
    EXPECT_TRUE(std::isfinite(c[1]));
  }
}

}  // namespace
}  // namespace sgl::spectral
