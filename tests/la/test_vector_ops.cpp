// Unit tests for BLAS-1 style vector helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "la/vector_ops.hpp"

namespace sgl::la {
namespace {

TEST(VectorOps, DotProduct) {
  const Vector x{1.0, 2.0, 3.0};
  const Vector y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, DotSizeMismatchThrows) {
  const Vector x{1.0};
  const Vector y{1.0, 2.0};
  EXPECT_THROW((void)dot(x, y), ContractViolation);
}

TEST(VectorOps, Norms) {
  const Vector x{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2_squared(x), 25.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(VectorOps, Axpy) {
  Vector y{1.0, 1.0, 1.0};
  const Vector x{1.0, 2.0, 3.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  EXPECT_DOUBLE_EQ(y[2], 7.0);
}

TEST(VectorOps, ScaleAndMean) {
  Vector x{2.0, 4.0, 6.0};
  scale(x, 0.5);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(mean(x), 2.0);
  EXPECT_DOUBLE_EQ(mean(Vector{}), 0.0);
}

TEST(VectorOps, CenterMakesMeanZero) {
  Vector x{1.0, 2.0, 3.0, 10.0};
  center(x);
  EXPECT_NEAR(mean(x), 0.0, 1e-15);
}

TEST(VectorOps, NormalizeReturnsOriginalNorm) {
  Vector x{3.0, 4.0};
  const Real n = normalize(x);
  EXPECT_DOUBLE_EQ(n, 5.0);
  EXPECT_NEAR(norm2(x), 1.0, 1e-15);
}

TEST(VectorOps, NormalizeZeroVectorIsNoop) {
  Vector x{0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(x), 0.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(VectorOps, DistanceSquared) {
  const Vector x{1.0, 2.0};
  const Vector y{4.0, 6.0};
  EXPECT_DOUBLE_EQ(distance_squared(x, y), 9.0 + 16.0);
}

}  // namespace
}  // namespace sgl::la
