// Unit tests for triplet assembly and CSR kernels.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/dense_matrix.hpp"
#include "la/sparse.hpp"

namespace sgl::la {
namespace {

CsrMatrix small_example() {
  // [1 0 2]
  // [0 3 0]
  // [4 0 5]
  return CsrMatrix::from_triplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}, {2, 0, 4.0}, {2, 2, 5.0}});
}

/// Random sparse symmetric matrix (diagonally dominant) for property tests.
CsrMatrix random_spd(Index n, Real density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  Vector diag(static_cast<std::size_t>(n), 1.0);
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j)
      if (rng.uniform() < density) {
        const Real v = rng.uniform(0.1, 2.0);
        t.push_back({i, j, -v});
        t.push_back({j, i, -v});
        diag[static_cast<std::size_t>(i)] += v;
        diag[static_cast<std::size_t>(j)] += v;
      }
  for (Index i = 0; i < n; ++i) t.push_back({i, i, diag[static_cast<std::size_t>(i)]});
  return CsrMatrix::from_triplets(n, n, t);
}

DenseMatrix to_dense(const CsrMatrix& a) {
  DenseMatrix d(a.rows(), a.cols());
  for (Index i = 0; i < a.rows(); ++i)
    for (Index k = a.row_ptr()[static_cast<std::size_t>(i)];
         k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k)
      d(i, a.col_idx()[static_cast<std::size_t>(k)]) +=
          a.values()[static_cast<std::size_t>(k)];
  return d;
}

TEST(CsrMatrix, FromTripletsBasicLayout) {
  const CsrMatrix a = small_example();
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 5.0);
}

TEST(CsrMatrix, ColumnsSortedPerRow) {
  const CsrMatrix a = CsrMatrix::from_triplets(
      2, 4, {{0, 3, 1.0}, {0, 0, 2.0}, {0, 2, 3.0}, {1, 1, 4.0}});
  EXPECT_EQ(a.col_idx()[0], 0);
  EXPECT_EQ(a.col_idx()[1], 2);
  EXPECT_EQ(a.col_idx()[2], 3);
}

TEST(CsrMatrix, DuplicateTripletsAccumulate) {
  const CsrMatrix a =
      CsrMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 0, -1.0}});
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_EQ(a.nnz(), 2);
}

TEST(CsrMatrix, OutOfRangeTripletThrows) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               ContractViolation);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, -1, 1.0}}),
               ContractViolation);
}

TEST(CsrMatrix, IdentityActsAsIdentity) {
  const CsrMatrix eye = CsrMatrix::identity(4);
  const Vector x{1.0, -2.0, 3.0, 0.5};
  EXPECT_EQ(eye.multiply(x), x);
}

TEST(CsrMatrix, MultiplyMatchesManual) {
  const CsrMatrix a = small_example();
  const Vector x{1.0, 2.0, 3.0};
  EXPECT_EQ(a.multiply(x), (Vector{7.0, 6.0, 19.0}));
}

TEST(CsrMatrix, MultiplyTransposedMatchesTranspose) {
  const CsrMatrix a = small_example();
  const Vector x{1.0, 2.0, 3.0};
  EXPECT_EQ(a.multiply_transposed(x), a.transposed().multiply(x));
}

TEST(CsrMatrix, QuadraticFormMatchesDense) {
  const CsrMatrix a = random_spd(12, 0.4, 5);
  Rng rng(6);
  Vector x(12);
  for (auto& v : x) v = rng.normal();
  const Vector ax = a.multiply(x);
  EXPECT_NEAR(a.quadratic_form(x), dot(x, ax), 1e-10);
}

TEST(CsrMatrix, DiagonalExtraction) {
  const CsrMatrix a = small_example();
  EXPECT_EQ(a.diagonal(), (Vector{1.0, 3.0, 5.0}));
}

TEST(CsrMatrix, TransposeInvolution) {
  const CsrMatrix a = small_example();
  const CsrMatrix att = a.transposed().transposed();
  EXPECT_EQ(att.nnz(), a.nnz());
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(att.at(i, j), a.at(i, j));
}

TEST(CsrMatrix, IsSymmetricDetects) {
  EXPECT_TRUE(random_spd(10, 0.3, 7).is_symmetric());
  EXPECT_FALSE(small_example().is_symmetric());
  const CsrMatrix rect = CsrMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
  EXPECT_FALSE(rect.is_symmetric());
}

TEST(CsrMatrix, AddMatchesDense) {
  const CsrMatrix a = random_spd(9, 0.3, 8);
  const CsrMatrix b = random_spd(9, 0.3, 9);
  const CsrMatrix c = add(a, b, 2.0, -0.5);
  const DenseMatrix da = to_dense(a);
  const DenseMatrix db = to_dense(b);
  const DenseMatrix dc = to_dense(c);
  for (Index i = 0; i < 9; ++i)
    for (Index j = 0; j < 9; ++j)
      EXPECT_NEAR(dc(i, j), 2.0 * da(i, j) - 0.5 * db(i, j), 1e-12);
}

TEST(CsrMatrix, ScaleMultipliesValues) {
  CsrMatrix a = small_example();
  a.scale(2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 10.0);
}

class SpgemmSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpgemmSweep, MatchesDenseProduct) {
  const std::uint64_t seed = GetParam();
  const CsrMatrix a = random_spd(11, 0.35, seed);
  const CsrMatrix b = random_spd(11, 0.35, seed + 1000);
  const CsrMatrix c = spgemm(a, b);
  const DenseMatrix dc = matmul(to_dense(a), to_dense(b));
  for (Index i = 0; i < 11; ++i)
    for (Index j = 0; j < 11; ++j) EXPECT_NEAR(c.at(i, j), dc(i, j), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpgemmSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

TEST(Spgemm, RectangularShapes) {
  // (2×3) · (3×2)
  const CsrMatrix a =
      CsrMatrix::from_triplets(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const CsrMatrix b =
      CsrMatrix::from_triplets(3, 2, {{0, 1, 4.0}, {1, 0, 5.0}, {2, 1, 6.0}});
  const CsrMatrix c = spgemm(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 4.0 + 12.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 15.0);
}

TEST(Spgemm, InnerDimensionMismatchThrows) {
  const CsrMatrix a = CsrMatrix::identity(3);
  const CsrMatrix b = CsrMatrix::identity(4);
  EXPECT_THROW(spgemm(a, b), ContractViolation);
}

}  // namespace
}  // namespace sgl::la
