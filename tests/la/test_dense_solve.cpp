// Unit tests for the small dense LDLᵀ solver.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/dense_solve.hpp"

namespace sgl::la {
namespace {

DenseMatrix random_spd_dense(Index n, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix b(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) b(i, j) = rng.normal();
  // A = BᵀB + n·I is SPD.
  DenseMatrix a = matmul(b.transposed(), b);
  for (Index i = 0; i < n; ++i) a(i, i) += static_cast<Real>(n);
  return a;
}

TEST(DenseSolve, SolvesDiagonalSystem) {
  DenseMatrix a(3, 3);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  a(2, 2) = 8.0;
  dense_ldlt_factor(a);
  const Vector x = dense_ldlt_solve(a, {2.0, 4.0, 8.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 1.0, 1e-14);
  EXPECT_NEAR(x[2], 1.0, 1e-14);
}

TEST(DenseSolve, Known2x2) {
  DenseMatrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 3.0;
  dense_ldlt_factor(a);
  const Vector x = dense_ldlt_solve(a, {8.0, 7.0});  // solution (1.25, 1.5)
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

class DenseSolveSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DenseSolveSweep, RandomSpdResidualSmall) {
  const Index n = 20;
  DenseMatrix a = random_spd_dense(n, GetParam());
  const DenseMatrix a_copy = a;
  Rng rng(GetParam() + 77);
  Vector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();

  dense_ldlt_factor(a);
  const Vector x = dense_ldlt_solve(a, b);
  const Vector ax = a_copy.multiply(x);
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(ax[static_cast<std::size_t>(i)],
                                            b[static_cast<std::size_t>(i)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseSolveSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull));

TEST(DenseSolve, SemidefiniteInputIsRegularized) {
  // Grounded-free Laplacian of a triangle is PSD with nullspace 1.
  DenseMatrix a(3, 3);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 3; ++j) a(i, j) = (i == j) ? 2.0 : -1.0;
  EXPECT_NO_THROW(dense_ldlt_factor(a));
  // Pivots stay positive.
  for (Index i = 0; i < 3; ++i) EXPECT_GT(a(i, i), 0.0);
}

TEST(DenseSolve, NonSquareThrows) {
  DenseMatrix a(2, 3);
  EXPECT_THROW(dense_ldlt_factor(a), ContractViolation);
}

TEST(DenseSolve, WrongRhsSizeThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = a(1, 1) = 1.0;
  dense_ldlt_factor(a);
  EXPECT_THROW(dense_ldlt_solve(a, {1.0, 2.0, 3.0}), ContractViolation);
}

}  // namespace
}  // namespace sgl::la
