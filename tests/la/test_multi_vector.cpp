// Unit tests for the MultiVector block type and its parallel kernels,
// including the bit-identical-across-thread-counts contract.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "la/multi_vector.hpp"
#include "la/sparse.hpp"

namespace sgl::la {
namespace {

CsrMatrix random_sparse(Index rows, Index cols, Index nnz_per_row,
                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (Index i = 0; i < rows; ++i) {
    for (Index k = 0; k < nnz_per_row; ++k) {
      t.push_back({i, rng.uniform_int(cols), rng.normal()});
    }
  }
  return CsrMatrix::from_triplets(rows, cols, t);
}

MultiVector random_block(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  MultiVector x(rows, cols);
  for (Index j = 0; j < cols; ++j)
    for (Real& v : x.col(j)) v = rng.normal();
  return x;
}

TEST(MultiVector, DenseRoundTripMovesStorage) {
  MultiVector x = random_block(7, 3, 1);
  const Real probe = x(5, 2);
  DenseMatrix d = x.release_dense();
  EXPECT_TRUE(x.empty());
  EXPECT_EQ(d.rows(), 7);
  EXPECT_EQ(d.cols(), 3);
  EXPECT_DOUBLE_EQ(d(5, 2), probe);
  const MultiVector back(std::move(d));
  EXPECT_DOUBLE_EQ(back(5, 2), probe);
}

TEST(MultiVector, BlockViewAddressesColumnRange) {
  const MultiVector x = random_block(6, 5, 2);
  const ConstBlockView v = x.block(1, 4);
  EXPECT_EQ(v.cols, 3);
  for (Index j = 0; j < 3; ++j)
    for (Index i = 0; i < 6; ++i)
      EXPECT_DOUBLE_EQ(v.at(i, j), x(i, j + 1));
}

TEST(MultiVector, ViewOfDenseMatrixSharesStorage) {
  DenseMatrix d(4, 2);
  d(3, 1) = 7.0;
  const BlockView v = view_of(d);
  v.at(0, 0) = 2.5;
  EXPECT_DOUBLE_EQ(d(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(view_of(static_cast<const DenseMatrix&>(d)).at(3, 1), 7.0);
}

TEST(MultiVector, SpmmMatchesPerColumnMultiplyBitwise) {
  const CsrMatrix a = random_sparse(40, 30, 4, 3);
  const MultiVector x = random_block(30, 9, 4);
  MultiVector y(40, 9);
  spmm(a, x.view(), y.view(), 1);
  for (Index j = 0; j < 9; ++j) {
    const Vector xj(x.col(j).begin(), x.col(j).end());
    const Vector yj = a.multiply(xj);
    for (Index i = 0; i < 40; ++i)
      EXPECT_DOUBLE_EQ(y(i, j), yj[static_cast<std::size_t>(i)]);
  }
}

TEST(MultiVector, SpmmBitIdenticalAcrossThreadCounts) {
  // Large enough to clear the serial-rows threshold.
  const CsrMatrix a = random_sparse(5000, 5000, 5, 5);
  const MultiVector x = random_block(5000, 8, 6);
  MultiVector y1(5000, 8);
  spmm(a, x.view(), y1.view(), 1);
  for (const Index threads : {2, 4, 8}) {
    MultiVector yt(5000, 8);
    spmm(a, x.view(), yt.view(), threads);
    EXPECT_EQ(y1.data(), yt.data()) << "threads=" << threads;
  }
}

TEST(MultiVector, CsrMultiplyBitIdenticalAcrossThreadCounts) {
  const CsrMatrix a = random_sparse(6000, 6000, 5, 7);
  Rng rng(8);
  Vector x(6000);
  for (Real& v : x) v = rng.normal();
  const Vector y1 = a.multiply(x, 1);
  for (const Index threads : {2, 4, 8})
    EXPECT_EQ(y1, a.multiply(x, threads)) << "threads=" << threads;
}

TEST(MultiVector, CsrMultiplyTransposedBitIdenticalAcrossThreadCounts) {
  const CsrMatrix a = random_sparse(6000, 500, 4, 9);
  Rng rng(10);
  Vector x(6000);
  for (Real& v : x) v = rng.normal();
  const Vector y1 = a.multiply_transposed(x, 1);
  for (const Index threads : {2, 4, 8})
    EXPECT_EQ(y1, a.multiply_transposed(x, threads)) << "threads=" << threads;
}

TEST(MultiVector, CsrMultiplyTransposedMatchesDenseReference) {
  const CsrMatrix a = random_sparse(5000, 40, 3, 11);
  Rng rng(12);
  Vector x(5000);
  for (Real& v : x) v = rng.normal();
  const Vector y = a.multiply_transposed(x, 4);
  // Reference via explicit transpose (serial gather kernel).
  const Vector ref = a.transposed().multiply(x);
  ASSERT_EQ(y.size(), ref.size());
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-10);
}

TEST(MultiVector, BlockInnerMatchesManualDots) {
  const MultiVector v = random_block(25, 4, 13);
  const MultiVector w = random_block(25, 3, 14);
  const DenseMatrix c = block_inner(v.view(), w.view(), 1);
  ASSERT_EQ(c.rows(), 4);
  ASSERT_EQ(c.cols(), 3);
  for (Index i = 0; i < 4; ++i)
    for (Index j = 0; j < 3; ++j) {
      Real acc = 0.0;
      for (Index k = 0; k < 25; ++k) acc += v(k, i) * w(k, j);
      EXPECT_DOUBLE_EQ(c(i, j), acc);
    }
}

TEST(MultiVector, BlockInnerBitIdenticalAcrossThreadCounts) {
  const MultiVector v = random_block(3000, 6, 15);
  const MultiVector w = random_block(3000, 5, 16);
  const DenseMatrix c1 = block_inner(v.view(), w.view(), 1);
  for (const Index threads : {2, 4, 8}) {
    const DenseMatrix ct = block_inner(v.view(), w.view(), threads);
    EXPECT_EQ(c1.data(), ct.data()) << "threads=" << threads;
  }
}

TEST(MultiVector, BlockProductAndSubtractInvert) {
  // W -= V (Vᵀ W) must leave W orthogonal to the columns of V when V is
  // orthonormal; block_product reconstructs the removed component.
  const MultiVector v_raw = random_block(60, 3, 17);
  // Orthonormalize v via modified Gram–Schmidt (test-local, serial).
  MultiVector v = v_raw;
  for (Index j = 0; j < 3; ++j) {
    auto cj = v.col(j);
    for (Index k = 0; k < j; ++k) {
      const auto ck = v.col(k);
      Real d = 0.0;
      for (Index i = 0; i < 60; ++i) d += cj[i] * ck[i];
      for (Index i = 0; i < 60; ++i) cj[i] -= d * ck[i];
    }
    Real n2 = 0.0;
    for (const Real x : cj) n2 += x * x;
    const Real inv = 1.0 / std::sqrt(n2);
    for (Real& x : cj) x *= inv;
  }

  MultiVector w = random_block(60, 2, 18);
  const MultiVector w_orig = w;
  const DenseMatrix c = block_inner(v.view(), w.view(), 1);
  block_subtract(w.view(), v.view(), c, 1);
  const DenseMatrix after = block_inner(v.view(), w.view(), 1);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 2; ++j) EXPECT_NEAR(after(i, j), 0.0, 1e-12);

  MultiVector removed(60, 2);
  block_product(v.view(), c, removed.view(), 1);
  for (Index j = 0; j < 2; ++j)
    for (Index i = 0; i < 60; ++i)
      EXPECT_NEAR(w(i, j) + removed(i, j), w_orig(i, j), 1e-12);
}

TEST(MultiVector, BlockProductBitIdenticalAcrossThreadCounts) {
  const MultiVector v = random_block(4000, 7, 19);
  const MultiVector c_src = random_block(7, 3, 20);
  const DenseMatrix c = c_src.to_dense();
  MultiVector out1(4000, 3);
  block_product(v.view(), c, out1.view(), 1);
  for (const Index threads : {2, 4, 8}) {
    MultiVector outt(4000, 3);
    block_product(v.view(), c, outt.view(), threads);
    EXPECT_EQ(out1.data(), outt.data()) << "threads=" << threads;
  }
}

TEST(MultiVector, ColumnKernels) {
  MultiVector x = random_block(50, 3, 21);
  const MultiVector y = random_block(50, 3, 22);
  const Vector dots = column_dots(x.view(), y.view(), 1);
  const Vector norms = column_norms(x.view(), 1);
  for (Index j = 0; j < 3; ++j) {
    Real d = 0.0;
    Real n2 = 0.0;
    for (Index i = 0; i < 50; ++i) {
      d += x(i, j) * y(i, j);
      n2 += x(i, j) * x(i, j);
    }
    EXPECT_DOUBLE_EQ(dots[static_cast<std::size_t>(j)], d);
    EXPECT_DOUBLE_EQ(norms[static_cast<std::size_t>(j)], std::sqrt(n2));
  }

  center_columns(x.view(), 1);
  for (Index j = 0; j < 3; ++j) {
    Real mean = 0.0;
    for (Index i = 0; i < 50; ++i) mean += x(i, j);
    EXPECT_NEAR(mean / 50.0, 0.0, 1e-14);
  }

  const Vector alpha = {2.0, -1.0, 0.5};
  MultiVector z = y;
  block_axpy(alpha, x.view(), z.view(), 1);
  for (Index j = 0; j < 3; ++j)
    for (Index i = 0; i < 50; ++i)
      EXPECT_DOUBLE_EQ(z(i, j),
                       y(i, j) + alpha[static_cast<std::size_t>(j)] * x(i, j));
}

TEST(MultiVector, KernelShapeContracts) {
  const CsrMatrix a = random_sparse(10, 8, 2, 23);
  const MultiVector x = random_block(9, 2, 24);  // wrong inner dim
  MultiVector y(10, 2);
  EXPECT_THROW(spmm(a, x.view(), y.view(), 1), ContractViolation);
  const MultiVector v = random_block(10, 2, 25);
  const MultiVector w = random_block(11, 2, 26);
  EXPECT_THROW((void)block_inner(v.view(), w.view(), 1), ContractViolation);
}

}  // namespace
}  // namespace sgl::la
