// Unit tests for the column-major dense matrix.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/dense_matrix.hpp"

namespace sgl::la {
namespace {

TEST(DenseMatrix, ZeroInitialized) {
  const DenseMatrix a(3, 2);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 2);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(a(i, j), 0.0);
}

TEST(DenseMatrix, IndexingIsColumnMajor) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(0, 1) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.data()[0], 1.0);
  EXPECT_DOUBLE_EQ(a.data()[1], 2.0);
  EXPECT_DOUBLE_EQ(a.data()[2], 3.0);
  EXPECT_DOUBLE_EQ(a.data()[3], 4.0);
}

TEST(DenseMatrix, ColumnViewsAndSetters) {
  DenseMatrix a(3, 2);
  a.set_col(1, Vector{1.0, 2.0, 3.0});
  const auto c = a.col(1);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  EXPECT_EQ(a.col_vector(1), (Vector{1.0, 2.0, 3.0}));
  EXPECT_THROW(a.set_col(0, Vector{1.0}), ContractViolation);
}

TEST(DenseMatrix, RowVector) {
  DenseMatrix a(2, 3);
  for (Index j = 0; j < 3; ++j) a(1, j) = static_cast<Real>(j + 1);
  EXPECT_EQ(a.row_vector(1), (Vector{1.0, 2.0, 3.0}));
}

TEST(DenseMatrix, RowDistanceSquaredMatchesManual) {
  DenseMatrix a(3, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(2, 0) = 4.0;
  a(2, 1) = 6.0;
  // rows: (1,2) and (4,6): d² = 9 + 16.
  EXPECT_DOUBLE_EQ(a.row_distance_squared(0, 2), 25.0);
  EXPECT_DOUBLE_EQ(a.row_distance_squared(2, 0), 25.0);
  EXPECT_DOUBLE_EQ(a.row_distance_squared(1, 1), 0.0);
}

TEST(DenseMatrix, MultiplyAndTransposeMultiply) {
  DenseMatrix a(2, 3);
  // a = [1 2 3; 4 5 6]
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Vector x{1.0, 1.0, 1.0};
  EXPECT_EQ(a.multiply(x), (Vector{6.0, 15.0}));
  const Vector y{1.0, 1.0};
  EXPECT_EQ(a.multiply_transposed(y), (Vector{5.0, 7.0, 9.0}));
}

TEST(DenseMatrix, TransposedSwapsShape) {
  DenseMatrix a(2, 3);
  a(0, 2) = 7.0;
  const DenseMatrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(DenseMatrix, FrobeniusNorms) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 2.0;
  EXPECT_DOUBLE_EQ(a.frobenius_norm_squared(), 5.0);
  EXPECT_DOUBLE_EQ(a.frobenius_dot(a), 5.0);
}

TEST(DenseMatrix, GramMatchesManual) {
  DenseMatrix a(3, 2);
  a(0, 0) = 1; a(1, 0) = 2; a(2, 0) = 2;
  a(0, 1) = 1; a(1, 1) = 0; a(2, 1) = -1;
  const DenseMatrix g = gram(a);
  EXPECT_EQ(g.rows(), 2);
  EXPECT_DOUBLE_EQ(g(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(g(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(g(1, 0), -1.0);
}

TEST(DenseMatrix, MatmulMatchesManual) {
  DenseMatrix a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const DenseMatrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(DenseMatrix, MatmulShapeMismatchThrows) {
  const DenseMatrix a(2, 3), b(2, 2);
  EXPECT_THROW(matmul(a, b), ContractViolation);
}

TEST(DenseMatrix, MultiplyTransposedAgreesWithExplicitTranspose) {
  Rng rng(3);
  DenseMatrix a(7, 5);
  for (Index j = 0; j < 5; ++j)
    for (Index i = 0; i < 7; ++i) a(i, j) = rng.normal();
  Vector x(7);
  for (auto& v : x) v = rng.normal();
  const Vector via_method = a.multiply_transposed(x);
  const Vector via_transpose = a.transposed().multiply(x);
  for (std::size_t i = 0; i < via_method.size(); ++i)
    EXPECT_NEAR(via_method[i], via_transpose[i], 1e-12);
}

}  // namespace
}  // namespace sgl::la
