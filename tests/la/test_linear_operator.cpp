// Unit tests for the LinearOperator interface and the CSR adapter.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/linear_operator.hpp"

namespace sgl::la {
namespace {

CsrMatrix random_square(Index n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (Index i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0 + rng.uniform()});
    for (Index k = 0; k < 3; ++k) t.push_back({i, rng.uniform_int(n), rng.normal()});
  }
  return CsrMatrix::from_triplets(n, n, t);
}

/// Minimal operator relying on the default (column-loop) apply_block.
class ScaleOperator final : public LinearOperator {
 public:
  explicit ScaleOperator(Index n, Real factor) : n_(n), factor_(factor) {}
  [[nodiscard]] Index rows() const noexcept override { return n_; }
  [[nodiscard]] Index cols() const noexcept override { return n_; }
  void apply(const Vector& x, Vector& y) const override {
    y.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = factor_ * x[i];
  }

 private:
  Index n_;
  Real factor_;
};

TEST(LinearOperator, CsrOperatorMatchesMatrixOps) {
  const CsrMatrix a = random_square(30, 1);
  const CsrOperator op(a);
  EXPECT_EQ(op.rows(), 30);
  EXPECT_EQ(op.cols(), 30);

  Rng rng(2);
  Vector x(30);
  for (Real& v : x) v = rng.normal();
  Vector y;
  op.apply(x, y);
  const Vector ref = a.multiply(x);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_DOUBLE_EQ(y[i], ref[i]);

  MultiVector xb(30, 4);
  for (Index j = 0; j < 4; ++j)
    for (Real& v : xb.col(j)) v = rng.normal();
  MultiVector yb(30, 4);
  op.apply_block(xb.view(), yb.view());
  for (Index j = 0; j < 4; ++j) {
    const Vector xj(xb.col(j).begin(), xb.col(j).end());
    const Vector yj = a.multiply(xj);
    for (Index i = 0; i < 30; ++i)
      EXPECT_DOUBLE_EQ(yb(i, j), yj[static_cast<std::size_t>(i)]);
  }
}

TEST(LinearOperator, DefaultApplyBlockLoopsColumns) {
  const ScaleOperator op(12, -2.5);
  Rng rng(3);
  MultiVector x(12, 3);
  for (Index j = 0; j < 3; ++j)
    for (Real& v : x.col(j)) v = rng.normal();
  MultiVector y(12, 3);
  op.apply_block(x.view(), y.view());
  for (Index j = 0; j < 3; ++j)
    for (Index i = 0; i < 12; ++i) EXPECT_DOUBLE_EQ(y(i, j), -2.5 * x(i, j));
}

TEST(LinearOperator, DefaultApplyBlockShapeContract) {
  const ScaleOperator op(12, 1.0);
  MultiVector x(12, 2);
  MultiVector y(11, 2);
  EXPECT_THROW(op.apply_block(x.view(), y.view()), ContractViolation);
}

}  // namespace
}  // namespace sgl::la
