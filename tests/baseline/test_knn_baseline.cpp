// Unit tests for the kNN-graph baseline.
#include <gtest/gtest.h>

#include "baseline/knn_baseline.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "measure/measurements.hpp"

namespace sgl::baseline {
namespace {

measure::Measurements grid_measurements(Index nx, Index ny, Index m) {
  const graph::Graph g = graph::make_grid2d(nx, ny).graph;
  measure::MeasurementOptions options;
  options.num_measurements = m;
  return measure::generate_measurements(g, options);
}

TEST(KnnBaseline, ProducesConnectedGraphOfExpectedDensity) {
  const measure::Measurements m = grid_measurements(12, 12, 40);
  KnnBaselineOptions options;
  options.k = 5;
  const KnnBaselineResult r = learn_knn_baseline(m.voltages, &m.currents, options);
  EXPECT_TRUE(graph::is_connected(r.graph));
  // Union-symmetrized 5NN graphs land between 2.5 and 5.0 density.
  EXPECT_GT(r.graph.density(), 2.4);
  EXPECT_LT(r.graph.density(), 5.0);
}

TEST(KnnBaseline, ScalingAppliedWhenCurrentsGiven) {
  const measure::Measurements m = grid_measurements(10, 10, 30);
  KnnBaselineOptions options;
  const KnnBaselineResult with_y =
      learn_knn_baseline(m.voltages, &m.currents, options);
  const KnnBaselineResult without =
      learn_knn_baseline(m.voltages, nullptr, options);
  EXPECT_NE(with_y.scale_factor, 1.0);
  EXPECT_DOUBLE_EQ(without.scale_factor, 1.0);
  ASSERT_EQ(with_y.graph.num_edges(), without.graph.num_edges());
  for (Index e = 0; e < with_y.graph.num_edges(); ++e)
    EXPECT_NEAR(with_y.graph.edge(e).weight,
                without.graph.edge(e).weight * with_y.scale_factor,
                1e-9 * with_y.graph.edge(e).weight);
}

TEST(KnnBaseline, EdgeScalingFlagDisables) {
  const measure::Measurements m = grid_measurements(8, 8, 20);
  KnnBaselineOptions options;
  options.edge_scaling = false;
  const KnnBaselineResult r = learn_knn_baseline(m.voltages, &m.currents, options);
  EXPECT_DOUBLE_EQ(r.scale_factor, 1.0);
}

TEST(KnnBaseline, KControlsDensity) {
  const measure::Measurements m = grid_measurements(10, 10, 30);
  KnnBaselineOptions k3;
  k3.k = 3;
  KnnBaselineOptions k8;
  k8.k = 8;
  const KnnBaselineResult r3 = learn_knn_baseline(m.voltages, nullptr, k3);
  const KnnBaselineResult r8 = learn_knn_baseline(m.voltages, nullptr, k8);
  EXPECT_LT(r3.graph.num_edges(), r8.graph.num_edges());
}

TEST(KnnBaseline, ReportsTiming) {
  const measure::Measurements m = grid_measurements(8, 8, 20);
  const KnnBaselineResult r = learn_knn_baseline(m.voltages, &m.currents, {});
  EXPECT_GE(r.seconds, 0.0);
}

}  // namespace
}  // namespace sgl::baseline
