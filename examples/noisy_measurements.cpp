// Noise robustness: learning a resistor network from noisy voltage
// measurements (the paper's Fig. 9 scenario).
//
// Measurement noise is unavoidable on real silicon: probe voltages carry
// supply ripple and quantization error. This example sweeps the relative
// noise level ζ (x̃ = x + ζ‖x‖ε) and shows that the learned network's
// leading eigenvalues — the global structural information — survive even
// 50% noise, degrading gracefully in between.
#include <cstdio>

#include "sgl.hpp"

int main() {
  using namespace sgl;

  const graph::MeshGraph mesh = graph::make_grid2d(50, 50, /*periodic=*/true);
  const graph::Graph& truth = mesh.graph;
  std::printf("ground truth: %d-node torus, %d edges\n", truth.num_nodes(),
              truth.num_edges());

  measure::MeasurementOptions mopt;
  mopt.num_measurements = 50;
  const measure::Measurements clean =
      measure::generate_measurements(truth, mopt);

  std::printf("%-8s %-10s %-12s %-14s %-14s\n", "noise", "density",
              "iterations", "eig corr", "rel err (top 10)");
  for (const Real zeta : {0.0, 0.1, 0.25, 0.5}) {
    la::DenseMatrix noisy = clean.voltages;
    measure::add_noise(noisy, zeta, /*seed=*/42);

    const core::SglResult result = core::learn_graph(noisy, clean.currents);
    const spectral::SpectrumComparison cmp =
        spectral::compare_spectra(truth, result.learned, 10);

    std::printf("%-8.2f %-10.3f %-12d %-14.4f %-14.4f\n", zeta,
                result.learned.density(), result.iterations, cmp.correlation,
                cmp.mean_rel_error);
  }
  std::printf("\nexpected: correlation stays near 1 while the relative error "
              "grows smoothly with the noise level\n");
  return 0;
}
