// serve_client — driving the serving layer, two ways.
//
// Default (no arguments): hosts a ServeEngine IN PROCESS and walks the
// JSON protocol through it — learn a graph from synthetic measurements,
// query effective resistances (single and batched), run a solve, and
// read the stats counters. No daemon needed; this is the quickest way
// to see the request/response schema.
//
// With --socket PATH: connects to a running `sgl_serve` daemon and
// sends the same script over the unix socket. With --stdin as well,
// forwards stdin lines instead (a netcat-style manual client):
//
//   tools/sgl_serve --socket /tmp/sgl.sock &
//   examples/sgl_serve_client --socket /tmp/sgl.sock
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "sgl.hpp"

namespace {

using namespace sgl;

const std::vector<std::string>& script() {
  static const std::vector<std::string> kScript = {
      R"({"op":"learn_synthetic","graph":"grid2d","nx":12,"ny":12,"measurements":40,"id":1})",
      R"({"op":"info","id":2})",
      R"({"op":"resistance","s":0,"t":143,"id":3})",
      R"({"op":"resistance_batch","pairs":[[0,1],[0,12],[5,77],[140,3]],"id":4})",
      R"({"op":"embedding","id":5})",
      R"({"op":"resistance","s":0,"t":0,"id":6})",  // typed kBadRequest
      R"({"op":"stats","id":7})",
  };
  return kScript;
}

int run_in_process() {
  serve::ServeOptions options;
  options.batch_width = 8;
  serve::ServeEngine engine(options);
  for (const std::string& line : script()) {
    std::printf(">> %s\n", line.c_str());
    const serve::ProtocolResult result = serve::handle_request(engine, line);
    std::printf("<< %s\n\n", result.response.c_str());
  }
  return 0;
}

#ifdef __unix__
int connect_to(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "serve_client: socket path too long\n");
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("serve_client: socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::perror("serve_client: connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_line(int fd, const std::string& line) {
  const std::string payload = line + "\n";
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n =
        ::send(fd, payload.data() + sent, payload.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

int run_over_socket(const std::string& path, bool from_stdin) {
  const int fd = connect_to(path);
  if (fd < 0) return 1;
  std::string buffer;
  std::string response;
  if (from_stdin) {
    char line[1 << 16];
    while (std::fgets(line, sizeof(line), stdin) != nullptr) {
      std::string request(line);
      while (!request.empty() &&
             (request.back() == '\n' || request.back() == '\r')) {
        request.pop_back();
      }
      if (request.empty()) continue;
      if (!send_line(fd, request) || !recv_line(fd, buffer, response)) break;
      std::printf("%s\n", response.c_str());
      std::fflush(stdout);
    }
  } else {
    for (const std::string& request : script()) {
      std::printf(">> %s\n", request.c_str());
      if (!send_line(fd, request) || !recv_line(fd, buffer, response)) {
        std::fprintf(stderr, "serve_client: connection lost\n");
        ::close(fd);
        return 1;
      }
      std::printf("<< %s\n\n", response.c_str());
    }
  }
  ::close(fd);
  return 0;
}
#endif  // __unix__

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool from_stdin = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stdin") == 0) {
      from_stdin = true;
    } else {
      std::fprintf(stderr,
                   "usage: sgl_serve_client [--socket PATH [--stdin]]\n");
      return 2;
    }
  }
  if (socket_path.empty()) return run_in_process();
#ifdef __unix__
  return run_over_socket(socket_path, from_stdin);
#else
  std::fprintf(stderr, "serve_client: socket mode needs a unix platform\n");
  return 2;
#endif
}
