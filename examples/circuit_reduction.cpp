// Circuit reduction: learn a small spectrally-similar resistor network
// from voltage measurements at a subset of observable nodes.
//
// This is the paper's Fig. 8 scenario (and the classic EDA model-order-
// reduction use case): a large power-grid-style network is only observable
// at 20% of its nodes — think probe pads or instrumented rails. SGL learns
// a 5× smaller resistor network over just those nodes, without any current
// measurements, whose leading Laplacian eigenvalues track the full grid's.
#include <cstdio>

#include "sgl.hpp"

int main() {
  using namespace sgl;

  // Full grid: a 60×60 circuit-style mesh with one decade of conductance
  // spread, thinned to density ≈ 1.9 like the paper's G2 test case.
  const graph::MeshGraph full =
      graph::make_circuit_grid(60, 60, 6900, 0.5, 5.0, 11);
  std::printf("full grid:    %d nodes, %d edges\n", full.graph.num_nodes(),
              full.graph.num_edges());

  // 100 measurement pairs on the full grid.
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 100;
  const measure::Measurements data =
      measure::generate_measurements(full.graph, mopt);

  // Observe voltages at a random 20% of the nodes — currents unknown.
  const Index observable = full.graph.num_nodes() / 5;
  const auto probes =
      measure::sample_nodes(full.graph.num_nodes(), observable, 3);
  const la::DenseMatrix x_observed = measure::take_rows(data.voltages, probes);
  std::printf("observable:   %d nodes (20%%), voltages only\n", observable);

  // Voltage-only SGL (no eq. 21-23 scaling without currents).
  const core::SglResult reduced = core::learn_graph(x_observed);
  std::printf("reduced net:  %d nodes, %d edges (%.1fx smaller), "
              "%d iterations\n",
              reduced.learned.num_nodes(), reduced.learned.num_edges(),
              static_cast<Real>(full.graph.num_nodes()) /
                  static_cast<Real>(reduced.learned.num_nodes()),
              reduced.iterations);

  // Compare the leading spectra (scale-free: the reduced network's
  // absolute conductance level is unobservable without currents).
  const Index k = 15;
  const solver::LaplacianPinvSolver pinv_full(full.graph);
  const solver::LaplacianPinvSolver pinv_reduced(reduced.learned);
  const la::Vector lambda_full =
      eig::smallest_laplacian_eigenpairs(pinv_full, k).eigenvalues;
  const la::Vector lambda_reduced =
      eig::smallest_laplacian_eigenpairs(pinv_reduced, k).eigenvalues;
  std::printf("eigenvalue correlation (first %d nontrivial): %.4f\n", k,
              spectral::pearson_correlation(lambda_full, lambda_reduced));

  // Spectral clustering on the reduced network still reflects the full
  // grid's geometry: nodes in the same cluster sit close in the plane.
  const auto clusters = spectral::spectral_clusters(reduced.learned, 4);
  std::vector<std::array<Real, 2>> centroid(4, {0.0, 0.0});
  std::vector<Index> count(4, 0);
  for (Index i = 0; i < reduced.learned.num_nodes(); ++i) {
    const auto& xy = full.coords[static_cast<std::size_t>(
        probes[static_cast<std::size_t>(i)])];
    const Index c = clusters[static_cast<std::size_t>(i)];
    centroid[static_cast<std::size_t>(c)][0] += xy[0];
    centroid[static_cast<std::size_t>(c)][1] += xy[1];
    ++count[static_cast<std::size_t>(c)];
  }
  std::printf("cluster centroids in grid coordinates (should spread out):\n");
  for (Index c = 0; c < 4; ++c) {
    if (count[static_cast<std::size_t>(c)] == 0) continue;
    std::printf("  cluster %d: (%.1f, %.1f) with %d probes\n", c,
                centroid[static_cast<std::size_t>(c)][0] /
                    count[static_cast<std::size_t>(c)],
                centroid[static_cast<std::size_t>(c)][1] /
                    count[static_cast<std::size_t>(c)],
                count[static_cast<std::size_t>(c)]);
  }
  return 0;
}
