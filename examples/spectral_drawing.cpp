// Spectral drawing: visualize a learned graph with Laplacian eigenvector
// coordinates (the visualization behind the paper's Figs. 4-5).
//
// Nodes are placed at (u2(i), u3(i)) — Koren's spectral layout — and
// colored by spectral clusters. The example exports side-by-side layouts
// of the ground-truth mesh and the SGL-learned graph as CSV plus a
// self-contained SVG, so the structural similarity is visible at a glance.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "sgl.hpp"

namespace {

using namespace sgl;

void write_svg(const std::string& path,
               const std::vector<std::array<Real, 2>>& left,
               const std::vector<std::array<Real, 2>>& right,
               const std::vector<Index>& clusters,
               const graph::Graph& left_edges,
               const graph::Graph& right_edges) {
  const char* palette[] = {"#e41a1c", "#377eb8", "#4daf4a", "#984ea3"};
  const auto normalize = [](std::vector<std::array<Real, 2>> pts) {
    Real min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
    for (const auto& p : pts) {
      min_x = std::min(min_x, p[0]);
      max_x = std::max(max_x, p[0]);
      min_y = std::min(min_y, p[1]);
      max_y = std::max(max_y, p[1]);
    }
    const Real sx = 360.0 / std::max(max_x - min_x, 1e-12);
    const Real sy = 360.0 / std::max(max_y - min_y, 1e-12);
    for (auto& p : pts) {
      p[0] = 20.0 + (p[0] - min_x) * sx;
      p[1] = 20.0 + (p[1] - min_y) * sy;
    }
    return pts;
  };
  const auto l = normalize(left);
  auto r = normalize(right);
  for (auto& p : r) p[0] += 420.0;

  std::ofstream out(path);
  out << "<svg xmlns='http://www.w3.org/2000/svg' width='820' height='400'>\n";
  const auto draw = [&](const std::vector<std::array<Real, 2>>& pts,
                        const graph::Graph& g) {
    for (const graph::Edge& e : g.edges()) {
      out << "<line x1='" << pts[static_cast<std::size_t>(e.s)][0] << "' y1='"
          << pts[static_cast<std::size_t>(e.s)][1] << "' x2='"
          << pts[static_cast<std::size_t>(e.t)][0] << "' y2='"
          << pts[static_cast<std::size_t>(e.t)][1]
          << "' stroke='#cccccc' stroke-width='0.3'/>\n";
    }
    for (std::size_t i = 0; i < pts.size(); ++i) {
      out << "<circle cx='" << pts[i][0] << "' cy='" << pts[i][1]
          << "' r='1.4' fill='" << palette[clusters[i] % 4] << "'/>\n";
    }
  };
  draw(l, left_edges);
  draw(r, right_edges);
  out << "</svg>\n";
}

}  // namespace

int main() {
  // Ground truth: the airfoil-style triangulated mesh (small variant so
  // the example finishes in seconds).
  graph::TriMeshOptions topt;
  topt.nx = 38;
  topt.ny = 32;
  topt.holes = {{18.5, 15.5, 12.0, 4.5}};
  const graph::MeshGraph mesh = graph::make_triangulated_mesh(topt);
  std::printf("mesh: %d nodes, %d edges (density %.2f)\n",
              mesh.graph.num_nodes(), mesh.graph.num_edges(),
              mesh.graph.density());

  measure::MeasurementOptions mopt;
  mopt.num_measurements = 100;
  const measure::Measurements data =
      measure::generate_measurements(mesh.graph, mopt);
  const core::SglResult result =
      core::learn_graph(data.voltages, data.currents);
  std::printf("learned: %d edges (density %.2f), %d iterations\n",
              result.learned.num_edges(), result.learned.density(),
              result.iterations);

  // Layouts and clusters. Clusters come from the ORIGINAL graph so that
  // colors are comparable across the two drawings (paper convention).
  const auto layout_orig = spectral::spectral_layout(mesh.graph);
  const auto layout_learned = spectral::spectral_layout(result.learned);
  const auto clusters = spectral::spectral_clusters(mesh.graph, 4);

  std::ofstream csv("spectral_drawing.csv");
  csv << "node,orig_x,orig_y,learned_x,learned_y,cluster\n";
  for (Index i = 0; i < mesh.graph.num_nodes(); ++i) {
    const auto& o = layout_orig[static_cast<std::size_t>(i)];
    const auto& l = layout_learned[static_cast<std::size_t>(i)];
    csv << i << ',' << o[0] << ',' << o[1] << ',' << l[0] << ',' << l[1]
        << ',' << clusters[static_cast<std::size_t>(i)] << '\n';
  }
  write_svg("spectral_drawing.svg", layout_orig, layout_learned, clusters,
            mesh.graph, result.learned);
  std::printf("wrote spectral_drawing.csv and spectral_drawing.svg\n");
  std::printf("(left: original graph, right: SGL-learned graph — the two "
              "layouts should show the same shape and color regions)\n");

  // A quantitative stand-in for eyeballing. Eigenvectors are defined up
  // to sign, and u2/u3 can swap or rotate when λ2 ≈ λ3, so report the
  // best alignment over axis pairings — the rotation-invariant part of
  // "the two drawings look alike".
  la::Vector ox, oy, lx, ly;
  for (Index i = 0; i < mesh.graph.num_nodes(); ++i) {
    ox.push_back(layout_orig[static_cast<std::size_t>(i)][0]);
    oy.push_back(layout_orig[static_cast<std::size_t>(i)][1]);
    lx.push_back(layout_learned[static_cast<std::size_t>(i)][0]);
    ly.push_back(layout_learned[static_cast<std::size_t>(i)][1]);
  }
  const Real direct =
      std::max(std::abs(spectral::pearson_correlation(ox, lx)),
               std::abs(spectral::pearson_correlation(oy, ly)));
  const Real swapped =
      std::max(std::abs(spectral::pearson_correlation(ox, ly)),
               std::abs(spectral::pearson_correlation(oy, lx)));
  std::printf("best layout-axis correlation (sign/swap aligned): %.3f\n",
              std::max(direct, swapped));
  return 0;
}
