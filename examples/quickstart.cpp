// Quickstart: learn a resistor network from voltage/current measurements.
//
// Builds a small 2D mesh as the hidden ground-truth network, simulates
// M = 50 measurement pairs, runs SGL, and reports how well the learned
// ultra-sparse graph reproduces the original spectrum and effective
// resistances.
#include <cstdio>

#include "sgl.hpp"

int main() {
  using namespace sgl;

  // 1. Hidden ground truth: a 30×30 grid (|V| = 900, |E| = 1740).
  const graph::MeshGraph mesh = graph::make_grid2d(30, 30);
  const graph::Graph& truth = mesh.graph;
  std::printf("ground truth:  %d nodes, %d edges (density %.2f)\n",
              truth.num_nodes(), truth.num_edges(), truth.density());

  // 2. Simulate measurements: 50 unit current excitations and their
  //    voltage responses (the only inputs SGL sees).
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 50;
  mopt.seed = 7;
  const measure::Measurements data = measure::generate_measurements(truth, mopt);

  // 3. Learn the graph.
  core::SglConfig config;
  config.k = 5;
  config.embedding.r = 5;
  config.beta = 1e-3;
  config.tolerance = 1e-12;
  const core::SglResult result =
      core::learn_graph(data.voltages, data.currents, config);
  std::printf("learned graph: %d nodes, %d edges (density %.2f)\n",
              result.learned.num_nodes(), result.learned.num_edges(),
              result.learned.density());
  std::printf("iterations: %d, converged: %s, final smax: %.3e\n",
              result.iterations, result.converged ? "yes" : "no",
              result.final_smax);
  std::printf("edge scale factor (eq. 23): %.4f\n", result.scale_factor);

  // 4. Compare the first 30 nontrivial eigenvalues.
  const spectral::SpectrumComparison spec =
      spectral::compare_spectra(truth, result.learned, 30);
  std::printf("eigenvalue correlation (30 smallest): %.4f\n",
              spec.correlation);
  std::printf("lambda_2 true %.5f vs learned %.5f\n", spec.reference[0],
              spec.approx[0]);

  // 5. Compare effective resistances over 200 random node pairs.
  const auto pairs = spectral::sample_node_pairs(truth.num_nodes(), 200, 3);
  const spectral::ResistanceComparison reff =
      spectral::compare_effective_resistances(truth, result.learned, pairs);
  std::printf("effective-resistance correlation (200 pairs): %.4f\n",
              reff.correlation);

  // 6. Objective value (eq. 2) for the learned graph vs the 5NN baseline.
  const spectral::ObjectiveBreakdown f_sgl =
      spectral::graphical_lasso_objective(result.learned, data.voltages);
  baseline::KnnBaselineOptions bopt;
  const baseline::KnnBaselineResult knn5 =
      baseline::learn_knn_baseline(data.voltages, &data.currents, bopt);
  const spectral::ObjectiveBreakdown f_knn =
      spectral::graphical_lasso_objective(knn5.graph, data.voltages);
  std::printf("objective F: SGL %.2f (density %.2f)  vs  5NN %.2f (density %.2f)\n",
              f_sgl.value(), result.learned.density(), f_knn.value(),
              knn5.graph.density());
  return 0;
}
